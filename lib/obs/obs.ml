(* Sheetscope v3: span tracing, a domain-safe sharded metrics registry,
   labeled per-session series, SLO evaluation, and pluggable sinks.

   Since v3 the metric families survive concurrent writers: counters,
   gauges and histograms are sharded over per-domain atomic cells
   (exact merge-on-read), the span ring is mutex-protected, and
   [emit] may be called from any domain — the old rule that morsel
   workers must never touch Sheetscope is gone. Span *opening*
   ([span]/[finish]) keeps single-writer nesting state and stays a
   coordinator-only affair; workers record completed spans through
   [emit]. The off-sink fast path is still a single mutable-bool test
   so instrumented code costs nothing when nobody is watching
   (property-tested byte-identical). *)

let src = Logs.Src.create "sheetscope" ~doc:"SheetMusiq instrumentation"

let with_lock m f = Mutex.protect m f

(* ---------- sharding ----------

   Fixed power-of-two shard count; a domain owns the slot of its id
   modulo [num_shards]. Collisions (two live domains whose ids are
   congruent) are allowed: every cell update is atomic, so collisions
   cost contention, never lost increments — merge-on-read totals are
   exact whatever the schedule. *)

let num_shards = 64
let shard_index () = (Domain.self () :> int) land (num_shards - 1)

(* atomic max via CAS loop *)
let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

(* ---------- clock ----------

   The wall clock can step backwards (NTP slew, VM migration); a span
   or histogram sample must never report a negative duration. Readings
   are clamped into a monotone timeline: [now_ns] never decreases
   within a process — the watermark is atomic so the guarantee holds
   across domains too. The raw source is swappable so tests can drive
   time backwards and check the clamp. *)

let wall_clock_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let raw_clock = ref wall_clock_ns
let last_ns = Atomic.make 0

let rec now_ns () =
  let t = !raw_clock () in
  let cur = Atomic.get last_ns in
  if t > cur then
    if Atomic.compare_and_set last_ns cur t then t else now_ns ()
  else cur

let set_raw_clock_for_tests = function
  | Some f -> raw_clock := f
  | None ->
      raw_clock := wall_clock_ns;
      (* re-anchor so a test clock set far in the future does not pin
         the timeline there *)
      Atomic.set last_ns (wall_clock_ns ())

let epoch_ns = now_ns ()

let time f =
  let t0 = now_ns () in
  let x = f () in
  (x, float_of_int (now_ns () - t0) /. 1e6)

(* ---------- sinks ---------- *)

type sink = Off | Logs | Memory

let current_sink = ref Off

let sink () = !current_sink
let set_sink s = current_sink := s
let recording () = !current_sink <> Off

(* ---------- events and spans ---------- *)

type event = {
  name : string;
  kind : string;
  uid : int;  (** 0 when no sheet is involved *)
  depth : int;
  start_ns : int;  (** relative to process start *)
  dur_ns : int;
  rows_in : int;  (** -1 when unknown *)
  rows_out : int;  (** -1 when unknown *)
}

type span = {
  sid : int;  (* 0 is the dummy span handed out when the sink is off *)
  s_name : string;
  s_kind : string;
  s_uid : int;
  s_depth : int;
  s_start : int;
}

let dummy_span =
  { sid = 0; s_name = ""; s_kind = ""; s_uid = 0; s_depth = 0; s_start = 0 }

let span_counter = Atomic.make 0

(* Nesting state is deliberately single-writer (the session's driving
   thread): worker domains record completed spans via [emit] and never
   push or pop here. *)
let open_stack : int list ref = ref []
let violations = Atomic.make 0

let ring_capacity = ref 65536
let ring : event Queue.t = Queue.create ()
let dropped_events = ref 0
let ring_mutex = Mutex.create ()

let record ev =
  match !current_sink with
  | Off -> ()
  | Memory ->
      with_lock ring_mutex (fun () ->
          if Queue.length ring >= !ring_capacity then begin
            ignore (Queue.pop ring);
            incr dropped_events
          end;
          Queue.push ev ring)
  | Logs ->
      with_lock ring_mutex (fun () ->
          Logs.app ~src (fun m ->
              m "%*s%s%s %.3f ms%s%s" (2 * ev.depth) "" ev.name
                (if ev.kind = "" then "" else "[" ^ ev.kind ^ "]")
                (float_of_int ev.dur_ns /. 1e6)
                (if ev.rows_out < 0 then ""
                 else Printf.sprintf " -> %d rows" ev.rows_out)
                (if ev.uid = 0 then ""
                 else Printf.sprintf " (sheet #%d)" ev.uid)))

let current_depth () = List.length !open_stack

(* GC gauges are sampled at span boundaries; forward-declared so
   [span]/[finish] can call the sampler defined after [Metrics]. *)
let gc_sampler : (unit -> unit) ref = ref (fun () -> ())
let sample_gc_gauges () = !gc_sampler ()

let span ?(uid = 0) ?(kind = "") name =
  if not (recording ()) then dummy_span
  else begin
    sample_gc_gauges ();
    let s =
      { sid = Atomic.fetch_and_add span_counter 1 + 1;
        s_name = name;
        s_kind = kind;
        s_uid = uid;
        s_depth = List.length !open_stack;
        s_start = now_ns () - epoch_ns }
    in
    open_stack := s.sid :: !open_stack;
    s
  end

let finish ?(rows_in = -1) ?(rows_out = -1) sp =
  if sp.sid <> 0 then begin
    (match !open_stack with
    | top :: rest when top = sp.sid -> open_stack := rest
    | _ ->
        (* closing out of order: count the violation but still remove
           the span so one mistake does not cascade *)
        Atomic.incr violations;
        open_stack := List.filter (fun id -> id <> sp.sid) !open_stack);
    sample_gc_gauges ();
    record
      { name = sp.s_name;
        kind = sp.s_kind;
        uid = sp.s_uid;
        depth = sp.s_depth;
        (* the clamped clock makes this non-negative already; the [max]
           guards the invariant even against a hostile test clock *)
        dur_ns = max 0 (now_ns () - epoch_ns - sp.s_start);
        rows_in;
        rows_out;
        start_ns = sp.s_start }
  end

(* Completed spans recorded after the fact, from any domain: the
   morsel workers time their own morsels and push the event straight
   into the (mutex-protected) ring. [depth] defaults to the
   coordinator's current nesting depth; parallel callers pass the
   depth captured before the fan-out so worker events nest under the
   span that spawned them. [start_ns] is an absolute [now_ns]
   reading. *)
let emit ?(uid = 0) ?(kind = "") ?(rows_in = -1) ?(rows_out = -1) ?depth
    ~start_ns ~dur_ns name =
  if recording () then
    let depth =
      match depth with Some d -> d | None -> List.length !open_stack
    in
    record
      { name;
        kind;
        uid;
        depth;
        start_ns = start_ns - epoch_ns;
        dur_ns = max 0 dur_ns;
        rows_in;
        rows_out }

let with_span ?uid ?kind name f =
  let sp = span ?uid ?kind name in
  match f () with
  | x ->
      finish sp;
      x
  | exception e ->
      finish sp;
      raise e

let open_spans () = List.length !open_stack
let nesting_ok () = Atomic.get violations = 0

let events () =
  with_lock ring_mutex (fun () -> List.of_seq (Queue.to_seq ring))

let dropped () = with_lock ring_mutex (fun () -> !dropped_events)

let clear_events () =
  with_lock ring_mutex (fun () ->
      Queue.clear ring;
      dropped_events := 0);
  open_stack := [];
  Atomic.set violations 0

(* Completed events are well-formed when every pair of overlapping
   intervals nests: the deeper one lies inside the shallower one. *)
let events_well_formed evs =
  let overlap a b =
    a.start_ns < b.start_ns + b.dur_ns && b.start_ns < a.start_ns + a.dur_ns
  in
  let contains outer inner =
    outer.start_ns <= inner.start_ns
    && inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
  in
  let arr = Array.of_list evs in
  let ok = ref true in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j && a.depth <> b.depth && overlap a b then
            let outer, inner = if a.depth < b.depth then (a, b) else (b, a) in
            if not (contains outer inner) then ok := false)
        arr)
    arr;
  !ok

(* ---------- labels ----------

   A bounded extra dimension on counters and histograms: a labeled
   series is a full registry entry named [base ^ "{k=v,...}"], so
   snapshots, JSON export and SLO evaluation see per-session /
   per-task series with no new machinery. Cardinality is capped per
   base name; past the cap every new label set lands in one shared
   "{__overflow__}" series, so a hostile or buggy labeler can create
   at most cap + 1 entries per family. *)

module Labels = struct
  type t = (string * string) list  (* sorted by key, deduped *)

  let empty = []
  let is_empty l = l = []

  (* keys/values are embedded in series names: strip the four
     characters that would make the encoding ambiguous *)
  let sanitize s =
    String.map (function '{' | '}' | ',' | '=' -> '_' | c -> c) s

  let v pairs =
    List.fold_left
      (fun acc (k, value) ->
        let k = sanitize k and value = sanitize value in
        (k, value) :: List.remove_assoc k acc)
      [] pairs
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pairs t = t

  let to_string = function
    | [] -> ""
    | ls ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, value) -> k ^ "=" ^ value) ls)
        ^ "}"
end

let overflow_suffix = "{__overflow__}"

let series_base name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

(* Deterministic registry order: sort by (family base, label suffix)
   so a base series is immediately followed by its labeled variants.
   Raw byte order would tear families apart — '{' (0x7b) sorts after
   every letter, so "engine.apply{...}" would land after
   "engine.apply.filter". Gate and doctor output diff stably because
   every snapshot/render/JSON export goes through this order. *)
let series_order a b =
  match String.compare (series_base a) (series_base b) with
  | 0 -> String.compare a b
  | c -> c

let default_label_cap = 64
let label_cap_ref = ref default_label_cap
let set_label_cap n = label_cap_ref := max 1 n
let label_cap () = !label_cap_ref

(* one mutex guards both registries and the per-family label counts *)
let reg_mutex = Mutex.create ()

(* admitted label sets per (registry tag, base name) *)
let label_sets : (string, int) Hashtbl.t = Hashtbl.create 16

(* Resolve the registry key for [name]+[labels]: an existing labeled
   series, a fresh one while the family is under the cap, or the
   overflow series. Caller holds [reg_mutex]; [mem] answers "is this
   key already registered". *)
let labeled_key ~tag ~mem name labels =
  if Labels.is_empty labels then name
  else
    let key = name ^ Labels.to_string labels in
    if mem key then key
    else
      let family = tag ^ ":" ^ name in
      let admitted =
        Option.value (Hashtbl.find_opt label_sets family) ~default:0
      in
      if admitted < !label_cap_ref then begin
        Hashtbl.replace label_sets family (admitted + 1);
        key
      end
      else name ^ overflow_suffix

(* Ambient labels: the session identity the shells stamp on hot-path
   series (engine.apply, sql.run). Single-writer like the span stack —
   worker domains never set or read it. *)
let ambient = ref Labels.empty
let set_ambient_labels ls = ambient := ls
let ambient_labels () = !ambient

(* ---------- metrics ---------- *)

module Metrics = struct
  type mkind = Counter | Gauge

  type m = { m_name : string; m_kind : mkind; cells : int Atomic.t array }

  let registry : (string, m) Hashtbl.t = Hashtbl.create 64

  let find_locked name m_kind =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m =
          { m_name = name;
            m_kind;
            cells = Array.init num_shards (fun _ -> Atomic.make 0) }
        in
        Hashtbl.replace registry name m;
        m

  let counter name = with_lock reg_mutex (fun () -> find_locked name Counter)
  let gauge name = with_lock reg_mutex (fun () -> find_locked name Gauge)

  let counter_labeled name labels =
    with_lock reg_mutex (fun () ->
        find_locked
          (labeled_key ~tag:"m" ~mem:(Hashtbl.mem registry) name labels)
          Counter)

  let incr ?(by = 1) m =
    ignore (Atomic.fetch_and_add m.cells.(shard_index ()) by)

  (* gauges are last-write-wins: the value lives in cell 0 and a [set]
     clears whatever other shards accumulated *)
  let set m v =
    Array.iteri (fun i c -> if i > 0 then Atomic.set c 0) m.cells;
    Atomic.set m.cells.(0) v

  let get m = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 m.cells
  let name m = m.m_name
  let is_counter m = m.m_kind = Counter

  let value_of name =
    match with_lock reg_mutex (fun () -> Hashtbl.find_opt registry name) with
    | Some m -> get m
    | None -> 0

  let entries () =
    with_lock reg_mutex (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
    |> List.sort (fun a b -> series_order a.m_name b.m_name)

  let snapshot () = List.map (fun m -> (m.m_name, get m)) (entries ())

  let counters_snapshot () =
    List.filter_map
      (fun m -> if m.m_kind = Counter then Some (m.m_name, get m) else None)
      (entries ())

  let reset () =
    List.iter
      (fun m -> Array.iter (fun c -> Atomic.set c 0) m.cells)
      (entries ())

  let to_json () =
    Obs_json.Obj
      (List.map (fun (name, v) -> (name, Obs_json.Int v)) (snapshot ()))

  let render () =
    let snap = snapshot () in
    if snap = [] then "(no metrics recorded)"
    else
      String.concat "\n"
        (List.map (fun (name, v) -> Printf.sprintf "%-32s %10d" name v) snap)
end

(* ---------- latency histograms ----------

   Third metric family (DESIGN.md §8): log-bucketed latency
   histograms. Bucket boundaries are fixed — four per decade from
   100 ns to 10 s — so recording is O(1) (a binary search over 33
   ints), histograms of the same shape merge by adding bucket counts,
   and two processes' histograms are comparable. Count and sum are
   exact; p50/p90/p99 are bucket estimates (linear interpolation
   inside the bucket holding the rank, never above the observed max);
   max is exact. Like counters — and unlike spans — histograms always
   record, sink or no sink, and since v3 from any domain: cells are
   sharded per domain and every update is atomic, so concurrent
   totals equal a single-writer run exactly. *)

module Histogram = struct
  (* 100 ns * 10^(i/4) for i = 0..32: 100 ns, 178 ns, 316 ns, 562 ns,
     1 us, ... 10 s. Bucket i covers (boundaries[i-1], boundaries[i]]
     (bucket 0 starts at 0); one extra bucket catches > 10 s. *)
  let boundaries =
    Array.init 33 (fun i ->
        int_of_float (Float.round (1e2 *. (10. ** (float_of_int i /. 4.)))))

  let num_buckets = Array.length boundaries + 1

  type shard = {
    sh_counts : int Atomic.t array;
    sh_count : int Atomic.t;
    sh_sum : int Atomic.t;
    sh_max : int Atomic.t;
  }

  (* shard slots fill lazily: most histograms are only ever touched by
     the driving domain, so eager allocation of every slot would waste
     num_shards * num_buckets atomics per series *)
  type h = { h_name : string; shards : shard option Atomic.t array }

  let fresh_shard () =
    { sh_counts = Array.init num_buckets (fun _ -> Atomic.make 0);
      sh_count = Atomic.make 0;
      sh_sum = Atomic.make 0;
      sh_max = Atomic.make 0 }

  let make name =
    { h_name = name; shards = Array.init num_shards (fun _ -> Atomic.make None) }

  let shard h =
    let cell = h.shards.(shard_index ()) in
    match Atomic.get cell with
    | Some s -> s
    | None ->
        let s = fresh_shard () in
        if Atomic.compare_and_set cell None (Some s) then s
        else (match Atomic.get cell with Some s -> s | None -> assert false)

  let registry : (string, h) Hashtbl.t = Hashtbl.create 32

  let find_locked name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h = make name in
        Hashtbl.replace registry name h;
        h

  let histogram name = with_lock reg_mutex (fun () -> find_locked name)

  let histogram_labeled name labels =
    with_lock reg_mutex (fun () ->
        find_locked
          (labeled_key ~tag:"h" ~mem:(Hashtbl.mem registry) name labels))

  (* smallest i with v <= boundaries.(i); the overflow bucket past the
     last boundary *)
  let bucket_index v =
    let n = Array.length boundaries in
    if v <= boundaries.(0) then 0
    else if v > boundaries.(n - 1) then n
    else begin
      let lo = ref 1 and hi = ref (n - 1) in
      while !hi > !lo do
        let mid = (!lo + !hi) / 2 in
        if v <= boundaries.(mid) then hi := mid else lo := mid + 1
      done;
      !hi
    end

  (* inclusive upper edge of a bucket; [max_int] for the overflow *)
  let bucket_hi i =
    if i < Array.length boundaries then boundaries.(i) else max_int

  (* exclusive lower edge (0 for the first bucket) *)
  let bucket_lo i = if i = 0 then 0 else boundaries.(i - 1)

  let record h ns =
    let ns = if ns < 0 then 0 else ns in
    let s = shard h in
    let i = bucket_index ns in
    ignore (Atomic.fetch_and_add s.sh_counts.(i) 1);
    ignore (Atomic.fetch_and_add s.sh_count 1);
    ignore (Atomic.fetch_and_add s.sh_sum ns);
    atomic_max s.sh_max ns

  (* exact merged totals across shards — every reader goes through
     this, so a snapshot is a single-writer-equivalent view *)
  type totals = {
    t_counts : int array;
    t_count : int;
    t_sum : int;
    t_max : int;
  }

  let totals h =
    let t =
      { t_counts = Array.make num_buckets 0; t_count = 0; t_sum = 0; t_max = 0 }
    in
    Array.fold_left
      (fun acc cell ->
        match Atomic.get cell with
        | None -> acc
        | Some s ->
            Array.iteri
              (fun i c -> acc.t_counts.(i) <- acc.t_counts.(i) + Atomic.get c)
              s.sh_counts;
            { acc with
              t_count = acc.t_count + Atomic.get s.sh_count;
              t_sum = acc.t_sum + Atomic.get s.sh_sum;
              t_max = max acc.t_max (Atomic.get s.sh_max) })
      t h.shards

  let of_totals name t =
    let h = make name in
    let s = fresh_shard () in
    Array.iteri (fun i n -> Atomic.set s.sh_counts.(i) n) t.t_counts;
    Atomic.set s.sh_count t.t_count;
    Atomic.set s.sh_sum t.t_sum;
    Atomic.set s.sh_max t.t_max;
    Atomic.set h.shards.(0) (Some s);
    h

  let count h = (totals h).t_count
  let sum_ns h = (totals h).t_sum
  let max_ns h = (totals h).t_max
  let name h = h.h_name

  let merge a b =
    let ta = totals a and tb = totals b in
    of_totals a.h_name
      { t_counts =
          Array.init num_buckets (fun i -> ta.t_counts.(i) + tb.t_counts.(i));
        t_count = ta.t_count + tb.t_count;
        t_sum = ta.t_sum + tb.t_sum;
        t_max = max ta.t_max tb.t_max }

  (* data equality — the name is not compared, so merge commutativity
     is testable on differently-named operands *)
  let equal a b =
    let ta = totals a and tb = totals b in
    ta.t_count = tb.t_count && ta.t_sum = tb.t_sum && ta.t_max = tb.t_max
    && ta.t_counts = tb.t_counts

  (* Estimate the [phi]-quantile (0 < phi <= 1): locate the bucket
     holding the ceil(phi*count)-th smallest sample, interpolate
     linearly inside it, and never exceed the exact max. *)
  let percentile_of_totals t phi =
    if t.t_count = 0 then 0.
    else begin
      let rank =
        max 1
          (min t.t_count (int_of_float (ceil (phi *. float_of_int t.t_count))))
      in
      let i = ref 0 and before = ref 0 in
      while !before + t.t_counts.(!i) < rank do
        before := !before + t.t_counts.(!i);
        incr i
      done;
      let lo = float_of_int (bucket_lo !i) in
      let hi =
        Float.min
          (float_of_int (min (bucket_hi !i) t.t_max))
          (float_of_int t.t_max)
      in
      let hi = Float.max hi lo in
      let in_bucket = float_of_int t.t_counts.(!i) in
      lo +. ((hi -. lo) *. float_of_int (rank - !before) /. in_bucket)
    end

  let percentile h phi = percentile_of_totals (totals h) phi

  type snapshot = {
    s_name : string;
    s_count : int;
    s_sum_ns : int;
    s_max_ns : int;
    s_p50_ns : float;
    s_p90_ns : float;
    s_p99_ns : float;
    s_buckets : (int * int) list;  (* (inclusive upper edge, count), nonzero only *)
  }

  let snapshot_of h =
    let t = totals h in
    { s_name = h.h_name;
      s_count = t.t_count;
      s_sum_ns = t.t_sum;
      s_max_ns = t.t_max;
      s_p50_ns = percentile_of_totals t 0.50;
      s_p90_ns = percentile_of_totals t 0.90;
      s_p99_ns = percentile_of_totals t 0.99;
      s_buckets =
        List.filter_map
          (fun i ->
            if t.t_counts.(i) = 0 then None
            else Some (bucket_hi i, t.t_counts.(i)))
          (List.init num_buckets Fun.id) }

  let entries () =
    with_lock reg_mutex (fun () ->
        Hashtbl.fold (fun _ h acc -> h :: acc) registry [])
    |> List.sort (fun a b -> series_order a.h_name b.h_name)

  let snapshots () = List.map snapshot_of (entries ())

  let counts_snapshot () = List.map (fun h -> (h.h_name, count h)) (entries ())

  (* every registered series of one family: the base histogram plus
     its labeled variants, sorted by name — what SLO evaluation walks *)
  let series_of_base base =
    List.filter (fun h -> series_base h.h_name = base) (entries ())

  let reset () =
    List.iter
      (fun h ->
        Array.iter
          (fun cell ->
            match Atomic.get cell with
            | None -> ()
            | Some s ->
                Array.iter (fun c -> Atomic.set c 0) s.sh_counts;
                Atomic.set s.sh_count 0;
                Atomic.set s.sh_sum 0;
                Atomic.set s.sh_max 0)
          h.shards)
      (entries ())

  let json_of_snapshot s =
    Obs_json.Obj
      [ ("count", Obs_json.Int s.s_count);
        ("sum_ns", Obs_json.Int s.s_sum_ns);
        ("max_ns", Obs_json.Int s.s_max_ns);
        ("p50_ns", Obs_json.Float s.s_p50_ns);
        ("p90_ns", Obs_json.Float s.s_p90_ns);
        ("p99_ns", Obs_json.Float s.s_p99_ns);
        ("buckets",
         Obs_json.List
           (List.map
              (fun (le, n) ->
                Obs_json.List [ Obs_json.Int le; Obs_json.Int n ])
              s.s_buckets)) ]

  let to_json () =
    Obs_json.Obj
      (List.map (fun s -> (s.s_name, json_of_snapshot s)) (snapshots ()))

  let pp_ns f =
    if f >= 1e9 then Printf.sprintf "%7.2f s " (f /. 1e9)
    else if f >= 1e6 then Printf.sprintf "%7.2f ms" (f /. 1e6)
    else if f >= 1e3 then Printf.sprintf "%7.2f us" (f /. 1e3)
    else Printf.sprintf "%7.0f ns" f

  let render () =
    let snaps = snapshots () in
    if snaps = [] then "(no histograms recorded)"
    else
      String.concat "\n"
        (Printf.sprintf "%-28s %8s  %10s %10s %10s %10s" "histogram" "count"
           "p50" "p90" "p99" "max"
        :: List.map
             (fun s ->
               Printf.sprintf "%-28s %8d  %10s %10s %10s %10s" s.s_name
                 s.s_count (pp_ns s.s_p50_ns) (pp_ns s.s_p90_ns)
                 (pp_ns s.s_p99_ns)
                 (pp_ns (float_of_int s.s_max_ns)))
             snaps)
end

(* Well-known metric names: registered up front so a snapshot always
   carries the full record, zeros included. *)
let k_engine_ops = "engine.ops"
let k_engine_errors = "engine.errors"
let k_cache_requests = "materialize.cache_requests"
let k_cache_hits = "materialize.cache_hits"
let k_cache_hits_subsumed = "materialize.cache_hits_subsumed"
let k_cache_misses = "materialize.cache_misses"
let k_cache_evictions = "materialize.cache_evictions"
let k_cache_seeds = "materialize.cache_seeds"
let k_full_replays = "materialize.full_replays"
let k_incremental_derivations = "incremental.derivations"
let k_incremental_fallbacks = "incremental.full_fallbacks"
let k_plan_nodes = "plan.nodes_executed"
let k_plan_rows_in = "plan.rows_in"
let k_plan_rows_out = "plan.rows_out"
let k_undo_depth = "session.undo_depth"
let k_redo_depth = "session.redo_depth"
let k_sql_translations = "sql.translations"
let k_sql_inverse_translations = "sql.inverse_translations"
let k_sql_executions = "sql.executions"

(* Sheetcol / morsel-parallelism names. [k_par_domains] is a gauge
   (the resolved domain count of the most recent parallel region);
   the rest are counters fed by the columnar scan driver — since v3
   the executing domain ticks them itself. *)
let k_par_domains = "par.domains"
let k_par_morsels = "par.morsels"
let k_par_scans = "par.scans"
let k_col_columns = "columnar.columns_materialized"
let k_col_dict_entries = "columnar.dict_entries"
let k_col_sel_rows_in = "columnar.sel_rows_in"
let k_col_sel_rows_out = "columnar.sel_rows_out"

(* Runtime telemetry: GC gauges sampled at span boundaries (and on
   every metrics/trace export), so traces carry the collector's view
   of the workload that produced them. *)
let k_gc_minor = "gc.minor_collections"
let k_gc_major = "gc.major_collections"
let k_gc_promoted = "gc.promoted_words"
let k_gc_heap = "gc.heap_words"

(* Well-known histogram names. [h_engine_apply] counts every
   [Engine.apply] (per-kind series ride alongside under
   "engine.apply.<kind>", per-session ones under
   "engine.apply{session=...}"); the plan interpreter records one
   sample per node under "plan.node.<kind>". *)
let h_engine_apply = "engine.apply"
let h_materialize_full = "materialize.full"
let h_materialize_stratum = "materialize.stratum"
let h_incremental_derive = "incremental.derive"
let h_plan_node_prefix = "plan.node."
let h_sql_run = "sql.run"
let h_par_morsel = "par.morsel"

let () =
  List.iter
    (fun k -> ignore (Metrics.counter k))
    [ k_engine_ops; k_engine_errors; k_cache_requests; k_cache_hits;
      k_cache_hits_subsumed; k_cache_misses;
      k_cache_evictions; k_cache_seeds; k_full_replays;
      k_incremental_derivations; k_incremental_fallbacks; k_plan_nodes;
      k_plan_rows_in; k_plan_rows_out; k_sql_translations;
      k_sql_inverse_translations; k_sql_executions; k_par_morsels;
      k_par_scans; k_col_columns; k_col_dict_entries; k_col_sel_rows_in;
      k_col_sel_rows_out ];
  List.iter
    (fun k -> ignore (Metrics.gauge k))
    [ k_undo_depth; k_redo_depth; k_par_domains; k_gc_minor; k_gc_major;
      k_gc_promoted; k_gc_heap ];
  List.iter
    (fun k -> ignore (Histogram.histogram k))
    [ h_engine_apply; h_materialize_full; h_materialize_stratum;
      h_incremental_derive; h_sql_run; h_par_morsel ];
  List.iter
    (fun kind -> ignore (Histogram.histogram (h_plan_node_prefix ^ kind)))
    [ "scan"; "project"; "filter"; "distinct"; "extend"; "extend-agg";
      "sort" ]

(* wire the span-boundary GC sampler now that the gauges exist *)
let g_gc_minor = Metrics.gauge k_gc_minor
let g_gc_major = Metrics.gauge k_gc_major
let g_gc_promoted = Metrics.gauge k_gc_promoted
let g_gc_heap = Metrics.gauge k_gc_heap

let () =
  gc_sampler :=
    fun () ->
      let s = Gc.quick_stat () in
      Metrics.set g_gc_minor s.Gc.minor_collections;
      Metrics.set g_gc_major s.Gc.major_collections;
      Metrics.set g_gc_promoted (int_of_float s.Gc.promoted_words);
      Metrics.set g_gc_heap s.Gc.heap_words

type core_stats = {
  engine_ops : int;
  engine_errors : int;
  cache_requests : int;
  cache_hits : int;
  cache_hits_subsumed : int;
  cache_misses : int;
  cache_evictions : int;
  cache_seeds : int;
  full_replays : int;
  incremental_derivations : int;
  incremental_fallbacks : int;
  plan_nodes : int;
  plan_rows_in : int;
  plan_rows_out : int;
  undo_depth : int;
  redo_depth : int;
  sql_translations : int;
  sql_inverse_translations : int;
  sql_executions : int;
}

let core_stats () =
  let v = Metrics.value_of in
  { engine_ops = v k_engine_ops;
    engine_errors = v k_engine_errors;
    cache_requests = v k_cache_requests;
    cache_hits = v k_cache_hits;
    cache_hits_subsumed = v k_cache_hits_subsumed;
    cache_misses = v k_cache_misses;
    cache_evictions = v k_cache_evictions;
    cache_seeds = v k_cache_seeds;
    full_replays = v k_full_replays;
    incremental_derivations = v k_incremental_derivations;
    incremental_fallbacks = v k_incremental_fallbacks;
    plan_nodes = v k_plan_nodes;
    plan_rows_in = v k_plan_rows_in;
    plan_rows_out = v k_plan_rows_out;
    undo_depth = v k_undo_depth;
    redo_depth = v k_redo_depth;
    sql_translations = v k_sql_translations;
    sql_inverse_translations = v k_sql_inverse_translations;
    sql_executions = v k_sql_executions }

(* ---------- session flight recorder ----------

   A bounded ring of structured events describing what a session did
   — operators applied and rejected, undo/redo, materialization-cache
   traffic, SQL translations, "slow op" markers for anything over
   the threshold, and one-time configuration warnings — so a slow or
   wedged session can be diagnosed after the fact. Always on (the
   ring is small and a record is one allocation), independent of the
   span sink; the SHEETSCOPE_SLOW_MS environment knob (default 100)
   sets the slow-op threshold. *)

module Flightrec = struct
  type event = {
    at_ns : int;  (* relative to process start *)
    f_kind : string;
    f_label : string;
    f_uid : int;  (* 0 when no sheet is involved *)
    f_dur_ns : int;  (* -1 when unknown *)
  }

  let capacity = ref 512
  let ring : event Queue.t = Queue.create ()
  let dropped_events = ref 0
  let fr_mutex = Mutex.create ()

  let default_slow_ms = 100.

  let slow_threshold = ref (int_of_float (default_slow_ms *. 1e6))

  let slow_threshold_ns () = !slow_threshold
  let set_slow_threshold_ms ms =
    slow_threshold := int_of_float (Float.max 0. ms *. 1e6)

  let set_capacity n = capacity := max 1 n

  let record ?(uid = 0) ?(dur_ns = -1) ~kind label =
    with_lock fr_mutex (fun () ->
        if Queue.length ring >= !capacity then begin
          ignore (Queue.pop ring);
          incr dropped_events
        end;
        Queue.push
          { at_ns = now_ns () - epoch_ns;
            f_kind = kind;
            f_label = label;
            f_uid = uid;
            f_dur_ns = dur_ns }
          ring)

  let events () =
    with_lock fr_mutex (fun () -> List.of_seq (Queue.to_seq ring))

  (* Read-and-clear under ONE lock acquisition. A handler thread that
     snapshots the recorder with [events] and then calls [clear] races
     other connections: events recorded between the two calls are
     silently destroyed. [drain] closes that window — every recorded
     event is returned by exactly one drain (or left in the ring),
     which the isolation test in test_obs asserts under concurrent
     writers. The dropped-event count is deliberately left alone: it
     tracks capacity evictions, not drains. *)
  let drain () =
    with_lock fr_mutex (fun () ->
        let evs = List.of_seq (Queue.to_seq ring) in
        Queue.clear ring;
        evs)

  let length () = with_lock fr_mutex (fun () -> Queue.length ring)
  let dropped () = with_lock fr_mutex (fun () -> !dropped_events)

  let clear () =
    with_lock fr_mutex (fun () ->
        Queue.clear ring;
        dropped_events := 0)

  let event_to_json ev =
    Obs_json.Obj
      (List.concat
         [ [ ("at_ns", Obs_json.Int ev.at_ns);
             ("kind", Obs_json.String ev.f_kind);
             ("label", Obs_json.String ev.f_label) ];
           (if ev.f_uid = 0 then [] else [ ("uid", Obs_json.Int ev.f_uid) ]);
           (if ev.f_dur_ns < 0 then []
            else [ ("dur_ns", Obs_json.Int ev.f_dur_ns) ]) ])

  let to_json () =
    Obs_json.Obj
      [ ("schema", Obs_json.String "sheetscope-flightrec/v1");
        ("slow_threshold_ms",
         Obs_json.Float (float_of_int !slow_threshold /. 1e6));
        ("dropped", Obs_json.Int (dropped ()));
        ("events", Obs_json.List (List.map event_to_json (events ()))) ]

  let render ?limit () =
    let evs = events () in
    let evs =
      match limit with
      | Some n when List.length evs > n ->
          let skip = List.length evs - n in
          List.filteri (fun i _ -> i >= skip) evs
      | _ -> evs
    in
    if evs = [] then "(flight recorder empty)"
    else
      String.concat "\n"
        (List.map
           (fun ev ->
             Printf.sprintf "%10.3f s  %-14s %s%s%s"
               (float_of_int ev.at_ns /. 1e9)
               ev.f_kind ev.f_label
               (if ev.f_dur_ns < 0 then ""
                else
                  Printf.sprintf "  (%.3f ms)"
                    (float_of_int ev.f_dur_ns /. 1e6))
               (if ev.f_uid = 0 then ""
                else Printf.sprintf "  [sheet #%d]" ev.f_uid))
           evs)
end

(* ---------- environment knobs ----------

   Centralized env parsing with warn-once diagnostics: an invalid
   value used to be silently swallowed; now the first rejection per
   variable drops a "env-warning" event into the flight recorder
   naming the variable, the rejected value and the fallback used. *)

module Env = struct
  let warned : (string, unit) Hashtbl.t = Hashtbl.create 4
  let env_mutex = Mutex.create ()

  let reset_warnings_for_tests () =
    with_lock env_mutex (fun () -> Hashtbl.reset warned)

  let warn_invalid ~var ~value ~fallback =
    let first =
      with_lock env_mutex (fun () ->
          if Hashtbl.mem warned var then false
          else begin
            Hashtbl.replace warned var ();
            true
          end)
    in
    if first then
      Flightrec.record ~kind:"env-warning"
        (Printf.sprintf "%s=%S is invalid; using %s" var value fallback)

  let int_at_least ~min ~fallback var =
    match Sys.getenv_opt var with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= min -> Some n
        | _ ->
            warn_invalid ~var ~value:s ~fallback;
            None)

  let float_at_least ~min ~fallback var =
    match Sys.getenv_opt var with
    | None -> None
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some f when f >= min -> Some f
        | _ ->
            warn_invalid ~var ~value:s ~fallback;
            None)
end

(* ---------- per-query execution profiles (Sheetdoctor) ----------

   A bounded ring of per-materialization records — the execution black
   box for one query: which cache outcome answered it (exact /
   subsumed / miss / seed), full replay vs incremental derivation, a
   node-by-node breakdown with wall time, row counts and allocation
   deltas, and *path attribution*: which filter predicates ran as
   compiled selection vectors and which fell back to the row path
   (naming the non-total subtree), plus the morsel/domain shape of the
   parallel scans underneath.

   Collection mirrors the flight recorder: always on (a record is a
   few small allocations), independent of the span sink, bounded with
   a drop counter (capacity from SHEETSCOPE_PROFILE_CAP, default 64).
   Like span nesting, the region stack is single-writer — only the
   session's driving thread enters/commits regions and notes
   attribution; worker domains contribute only through the sharded
   counters whose deltas a region snapshots at its boundaries, so the
   merged-on-read totals keep the record exact under parallelism. *)

module Profile = struct
  type node = {
    n_kind : string;
    n_label : string;
    n_rows_in : int;  (* -1 when unknown *)
    n_rows_out : int;  (* -1 when unknown *)
    n_time_ns : int;
    n_alloc_bytes : float;
    n_path : string;  (* "" | "columnar" | "row" | "fused" | "blocking" *)
    n_detail : string;
  }

  type t = {
    p_session : string;  (* ambient labels at commit, "" when none *)
    p_uid : int;  (* 0 when no sheet is involved *)
    p_kind : string;  (* "materialize" | "plan" *)
    p_rows_out : int;  (* -1 when the region failed *)
    p_total_ns : int;
    p_alloc_bytes : float;
    p_cache : string;  (* "exact" | "subsumed" | "miss" | "seed" | "" *)
    p_strategy : string;  (* "full-replay" | "incremental" | "" *)
    p_domains : int;
    p_morsels : int;
    p_par_scans : int;
    p_sel_rows_in : int;
    p_sel_rows_out : int;
    p_compiled : string list;
    p_fallbacks : (string * string) list;  (* (predicate, reason) *)
    p_nodes : node list;
  }

  let default_cap = 64
  let capacity = ref default_cap
  let set_capacity n = capacity := max 1 n
  let ring : t Queue.t = Queue.create ()
  let dropped_records = ref 0
  let pr_mutex = Mutex.create ()

  (* collection can be switched off entirely (the overhead bench
     measures the difference); regions entered while disabled record
     nothing even if re-enabled before they commit *)
  let enabled_flag = ref true
  let enabled () = !enabled_flag
  let set_enabled b = enabled_flag := b

  type pending = {
    pd_uid : int;
    pd_kind : string;
    pd_t0 : int;
    pd_alloc0 : float;
    pd_morsels0 : int;
    pd_scans0 : int;
    pd_sel_in0 : int;
    pd_sel_out0 : int;
    mutable pd_cache : string;
    mutable pd_strategy : string;
    mutable pd_compiled : string list;  (* reversed *)
    mutable pd_fallbacks : (string * string) list;  (* reversed *)
    mutable pd_nodes : node list;  (* reversed *)
  }

  (* [Nested]: a same-uid re-entry (e.g. [Materialize.full] inside a
     [full_cached] miss) — its notes flow to the enclosing region so
     one query yields one record, not two. *)
  type slot = Disabled | Nested | Region of pending

  let stack : slot list ref = ref []

  let c_morsels = Metrics.counter k_par_morsels
  let c_scans = Metrics.counter k_par_scans
  let c_sel_in = Metrics.counter k_col_sel_rows_in
  let c_sel_out = Metrics.counter k_col_sel_rows_out
  let g_domains = Metrics.gauge k_par_domains

  let rec find_region = function
    | [] -> None
    | Region p :: _ -> Some p
    | (Disabled | Nested) :: rest -> find_region rest

  let in_region () =
    match find_region !stack with Some _ -> true | None -> false

  let open_regions () = List.length !stack
  let reset_stack_for_tests () = stack := []

  let push_record r =
    with_lock pr_mutex (fun () ->
        if Queue.length ring >= !capacity then begin
          ignore (Queue.pop ring);
          incr dropped_records
        end;
        Queue.push r ring)

  let enter ~kind ~uid =
    let slot =
      if not !enabled_flag then Disabled
      else if
        uid <> 0
        && List.exists
             (function Region p -> p.pd_uid = uid | _ -> false)
             !stack
      then Nested
      else
        Region
          { pd_uid = uid;
            pd_kind = kind;
            pd_t0 = now_ns ();
            pd_alloc0 = Gc.allocated_bytes ();
            pd_morsels0 = Metrics.get c_morsels;
            pd_scans0 = Metrics.get c_scans;
            pd_sel_in0 = Metrics.get c_sel_in;
            pd_sel_out0 = Metrics.get c_sel_out;
            pd_cache = "";
            pd_strategy = "";
            pd_compiled = [];
            pd_fallbacks = [];
            pd_nodes = [] }
    in
    stack := slot :: !stack

  let commit ~rows_out =
    match !stack with
    | [] -> ()  (* unbalanced commit: tolerated, like span mis-nesting *)
    | slot :: rest -> (
        stack := rest;
        match slot with
        | Disabled | Nested -> ()
        | Region p ->
            push_record
              { p_session = Labels.to_string (ambient_labels ());
                p_uid = p.pd_uid;
                p_kind = p.pd_kind;
                p_rows_out = rows_out;
                p_total_ns = max 0 (now_ns () - p.pd_t0);
                p_alloc_bytes =
                  Float.max 0. (Gc.allocated_bytes () -. p.pd_alloc0);
                p_cache = p.pd_cache;
                p_strategy = p.pd_strategy;
                p_domains = Metrics.get g_domains;
                p_morsels = Metrics.get c_morsels - p.pd_morsels0;
                p_par_scans = Metrics.get c_scans - p.pd_scans0;
                p_sel_rows_in = Metrics.get c_sel_in - p.pd_sel_in0;
                p_sel_rows_out = Metrics.get c_sel_out - p.pd_sel_out0;
                p_compiled = List.rev p.pd_compiled;
                p_fallbacks = List.rev p.pd_fallbacks;
                p_nodes = List.rev p.pd_nodes })

  let note f = match find_region !stack with None -> () | Some p -> f p
  let note_cache outcome = note (fun p -> p.pd_cache <- outcome)
  let note_strategy s = note (fun p -> p.pd_strategy <- s)

  let note_compiled pred =
    note (fun p -> p.pd_compiled <- pred :: p.pd_compiled)

  let note_fallback ~pred ~reason =
    note (fun p -> p.pd_fallbacks <- (pred, reason) :: p.pd_fallbacks)

  let note_node ?(rows_in = -1) ?(rows_out = -1) ?(path = "") ?(detail = "")
      ~kind ~label ~time_ns ~alloc_bytes () =
    note (fun p ->
        p.pd_nodes <-
          { n_kind = kind;
            n_label = label;
            n_rows_in = rows_in;
            n_rows_out = rows_out;
            n_time_ns = time_ns;
            n_alloc_bytes = alloc_bytes;
            n_path = path;
            n_detail = detail }
          :: p.pd_nodes)

  let records () =
    with_lock pr_mutex (fun () -> List.of_seq (Queue.to_seq ring))

  let length () = with_lock pr_mutex (fun () -> Queue.length ring)
  let dropped () = with_lock pr_mutex (fun () -> !dropped_records)

  let clear () =
    with_lock pr_mutex (fun () ->
        Queue.clear ring;
        dropped_records := 0)

  let last () =
    with_lock pr_mutex (fun () -> Queue.fold (fun _ r -> Some r) None ring)

  let find ~uid =
    List.fold_left
      (fun acc r -> if r.p_uid = uid then Some r else acc)
      None (records ())

  (* ----- JSON (schema "sheetscope-profile/v1") -----

     The printer/parser pair is total and round-trips records exactly
     (fuzz-tested): printing never raises, and [of_json] answers
     [Error], never an exception, on arbitrary JSON. *)

  let node_to_json n =
    Obs_json.Obj
      [ ("kind", Obs_json.String n.n_kind);
        ("label", Obs_json.String n.n_label);
        ("rows_in", Obs_json.Int n.n_rows_in);
        ("rows_out", Obs_json.Int n.n_rows_out);
        ("time_ns", Obs_json.Int n.n_time_ns);
        ("alloc_bytes", Obs_json.Float n.n_alloc_bytes);
        ("path", Obs_json.String n.n_path);
        ("detail", Obs_json.String n.n_detail) ]

  let record_to_json r =
    Obs_json.Obj
      [ ("session", Obs_json.String r.p_session);
        ("uid", Obs_json.Int r.p_uid);
        ("kind", Obs_json.String r.p_kind);
        ("rows_out", Obs_json.Int r.p_rows_out);
        ("total_ns", Obs_json.Int r.p_total_ns);
        ("alloc_bytes", Obs_json.Float r.p_alloc_bytes);
        ("cache", Obs_json.String r.p_cache);
        ("strategy", Obs_json.String r.p_strategy);
        ("domains", Obs_json.Int r.p_domains);
        ("morsels", Obs_json.Int r.p_morsels);
        ("par_scans", Obs_json.Int r.p_par_scans);
        ("sel_rows_in", Obs_json.Int r.p_sel_rows_in);
        ("sel_rows_out", Obs_json.Int r.p_sel_rows_out);
        ("compiled",
         Obs_json.List (List.map (fun s -> Obs_json.String s) r.p_compiled));
        ("fallbacks",
         Obs_json.List
           (List.map
              (fun (pred, reason) ->
                Obs_json.Obj
                  [ ("pred", Obs_json.String pred);
                    ("reason", Obs_json.String reason) ])
              r.p_fallbacks));
        ("nodes", Obs_json.List (List.map node_to_json r.p_nodes)) ]

  let to_json () =
    Obs_json.Obj
      [ ("schema", Obs_json.String "sheetscope-profile/v1");
        ("capacity", Obs_json.Int !capacity);
        ("dropped", Obs_json.Int (dropped ()));
        ("profiles", Obs_json.List (List.map record_to_json (records ()))) ]

  let ( let* ) = Result.bind

  let str_field j k =
    match Obs_json.member k j with
    | Some (Obs_json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "profile: expected string field %S" k)

  let int_field j k =
    match Obs_json.member k j with
    | Some (Obs_json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "profile: expected int field %S" k)

  let float_field j k =
    match Obs_json.member k j with
    | Some (Obs_json.Float f) -> Ok f
    | Some (Obs_json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "profile: expected number field %S" k)

  let list_field j k =
    match Obs_json.member k j with
    | Some (Obs_json.List l) -> Ok l
    | _ -> Error (Printf.sprintf "profile: expected list field %S" k)

  let rec map_result f = function
    | [] -> Ok []
    | x :: rest ->
        let* y = f x in
        let* ys = map_result f rest in
        Ok (y :: ys)

  let node_of_json j =
    let* n_kind = str_field j "kind" in
    let* n_label = str_field j "label" in
    let* n_rows_in = int_field j "rows_in" in
    let* n_rows_out = int_field j "rows_out" in
    let* n_time_ns = int_field j "time_ns" in
    let* n_alloc_bytes = float_field j "alloc_bytes" in
    let* n_path = str_field j "path" in
    let* n_detail = str_field j "detail" in
    Ok
      { n_kind; n_label; n_rows_in; n_rows_out; n_time_ns; n_alloc_bytes;
        n_path; n_detail }

  let fallback_of_json j =
    let* pred = str_field j "pred" in
    let* reason = str_field j "reason" in
    Ok (pred, reason)

  let record_of_json j =
    let* p_session = str_field j "session" in
    let* p_uid = int_field j "uid" in
    let* p_kind = str_field j "kind" in
    let* p_rows_out = int_field j "rows_out" in
    let* p_total_ns = int_field j "total_ns" in
    let* p_alloc_bytes = float_field j "alloc_bytes" in
    let* p_cache = str_field j "cache" in
    let* p_strategy = str_field j "strategy" in
    let* p_domains = int_field j "domains" in
    let* p_morsels = int_field j "morsels" in
    let* p_par_scans = int_field j "par_scans" in
    let* p_sel_rows_in = int_field j "sel_rows_in" in
    let* p_sel_rows_out = int_field j "sel_rows_out" in
    let* compiled = list_field j "compiled" in
    let* p_compiled =
      map_result
        (function
          | Obs_json.String s -> Ok s
          | _ -> Error "profile: \"compiled\" entries must be strings")
        compiled
    in
    let* fallbacks = list_field j "fallbacks" in
    let* p_fallbacks = map_result fallback_of_json fallbacks in
    let* nodes = list_field j "nodes" in
    let* p_nodes = map_result node_of_json nodes in
    Ok
      { p_session; p_uid; p_kind; p_rows_out; p_total_ns; p_alloc_bytes;
        p_cache; p_strategy; p_domains; p_morsels; p_par_scans;
        p_sel_rows_in; p_sel_rows_out; p_compiled; p_fallbacks; p_nodes }

  let of_json j =
    match Obs_json.member "schema" j with
    | Some (Obs_json.String "sheetscope-profile/v1") ->
        let* l = list_field j "profiles" in
        map_result record_of_json l
    | _ -> Error "profile: missing or unsupported \"schema\""

  (* ----- rendering ----- *)

  let pp_bytes b =
    if b >= 1048576. then Printf.sprintf "%.1f MB" (b /. 1048576.)
    else if b >= 1024. then Printf.sprintf "%.1f kB" (b /. 1024.)
    else Printf.sprintf "%.0f B" b

  let render_record r =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "#%d %s%s  rows=%d  total=%.3f ms  alloc=%s" r.p_uid
         r.p_kind
         (if r.p_session = "" then "" else " " ^ r.p_session)
         r.p_rows_out
         (float_of_int r.p_total_ns /. 1e6)
         (pp_bytes r.p_alloc_bytes));
    if r.p_cache <> "" || r.p_strategy <> "" then
      Buffer.add_string buf
        (Printf.sprintf "\n  cache=%s strategy=%s"
           (if r.p_cache = "" then "-" else r.p_cache)
           (if r.p_strategy = "" then "-" else r.p_strategy));
    Buffer.add_string buf
      (Printf.sprintf "\n  domains=%d morsels=%d scans=%d  sel %d -> %d"
         r.p_domains r.p_morsels r.p_par_scans r.p_sel_rows_in
         r.p_sel_rows_out);
    List.iter
      (fun pred -> Buffer.add_string buf ("\n  compiled: " ^ pred))
      r.p_compiled;
    List.iter
      (fun (pred, reason) ->
        Buffer.add_string buf
          (Printf.sprintf "\n  row-path: %s (%s)" pred reason))
      r.p_fallbacks;
    List.iter
      (fun n ->
        Buffer.add_string buf
          (Printf.sprintf "\n    %-12s %-30s %10s  %8.3f ms%s" n.n_kind
             n.n_label
             ((if n.n_rows_in < 0 then ""
               else string_of_int n.n_rows_in ^ " -> ")
             ^ if n.n_rows_out < 0 then "?" else string_of_int n.n_rows_out)
             (float_of_int n.n_time_ns /. 1e6)
             (if n.n_path = "" then "" else "  [" ^ n.n_path ^ "]")))
      r.p_nodes;
    Buffer.contents buf

  let render ?limit () =
    let rs = records () in
    let rs =
      match limit with
      | Some n when List.length rs > n ->
          let skip = List.length rs - n in
          List.filteri (fun i _ -> i >= skip) rs
      | _ -> rs
    in
    if rs = [] then "(no profiles recorded)"
    else String.concat "\n" (List.map render_record rs)
end

(* the flight recorder's slow-op threshold and the profile-ring
   capacity come from the environment; re-runnable so tests can drive
   the knobs *)
let reload_env_config () =
  Flightrec.set_slow_threshold_ms
    (Option.value
       (Env.float_at_least ~min:0.
          ~fallback:
            (Printf.sprintf "the %.0f ms default" Flightrec.default_slow_ms)
          "SHEETSCOPE_SLOW_MS")
       ~default:Flightrec.default_slow_ms);
  Profile.set_capacity
    (Option.value
       (Env.int_at_least ~min:1
          ~fallback:
            (Printf.sprintf "the %d-record default" Profile.default_cap)
          "SHEETSCOPE_PROFILE_CAP")
       ~default:Profile.default_cap)

let () = reload_env_config ()

(* ---------- SLO definitions and evaluation ----------

   Service-level objectives declared in one place and evaluated
   against the live registry: latency targets check a percentile of a
   histogram family — the base series and every labeled
   (per-session / per-task) series it has grown — and rate targets
   check a counter ratio. A series with no data passes vacuously but
   is reported as such. Surfaced as `slo` in the REPL, `\slo` in
   sheetsql, the TUI status segment, and JSON via {!Slo.to_json}. *)

module Slo = struct
  type def =
    | Latency of {
        slo_name : string;
        hist : string;
        phi : float;
        under_ms : float;
      }
    | Error_rate of {
        slo_name : string;
        errors : string;
        total : string;
        under : float;  (* fraction, e.g. 0.01 = 1 % *)
      }

  let def_name = function
    | Latency l -> l.slo_name
    | Error_rate e -> e.slo_name

  (* the one place targets are declared *)
  let defaults =
    [ Latency
        { slo_name = "engine-apply-p99";
          hist = h_engine_apply;
          phi = 0.99;
          under_ms = 50. };
      Latency
        { slo_name = "materialize-full-p99";
          hist = h_materialize_full;
          phi = 0.99;
          under_ms = 200. };
      Latency
        { slo_name = "sql-run-p99";
          hist = h_sql_run;
          phi = 0.99;
          under_ms = 100. };
      Error_rate
        { slo_name = "engine-error-rate";
          errors = k_engine_errors;
          total = k_engine_ops;
          under = 0.01 } ]

  let declared = ref defaults
  let declare d = declared := !declared @ [ d ]
  let definitions () = !declared
  let reset_declarations () = declared := defaults

  type verdict = {
    v_slo : string;
    v_series : string;
    v_observed : float;  (* ms for latency, fraction for error rate *)
    v_limit : float;
    v_count : int;  (* samples (latency) / denominator (rate); 0 = no data *)
    v_ok : bool;
  }

  let evaluate () =
    List.concat_map
      (fun def ->
        match def with
        | Latency { slo_name; hist; phi; under_ms } ->
            let series =
              match Histogram.series_of_base hist with
              | [] -> [ Histogram.histogram hist ]
              | hs -> hs
            in
            List.map
              (fun h ->
                let n = Histogram.count h in
                let observed_ms = Histogram.percentile h phi /. 1e6 in
                { v_slo = slo_name;
                  v_series = Histogram.name h;
                  v_observed = observed_ms;
                  v_limit = under_ms;
                  v_count = n;
                  v_ok = n = 0 || observed_ms <= under_ms })
              series
        | Error_rate { slo_name; errors; total; under } ->
            let den = Metrics.value_of total in
            let num = Metrics.value_of errors in
            let frac =
              if den = 0 then 0. else float_of_int num /. float_of_int den
            in
            [ { v_slo = slo_name;
                v_series = errors ^ "/" ^ total;
                v_observed = frac;
                v_limit = under;
                v_count = den;
                v_ok = den = 0 || frac <= under } ])
      !declared

  let ok () = List.for_all (fun v -> v.v_ok) (evaluate ())

  let summary () =
    let vs = evaluate () in
    let failing = List.length (List.filter (fun v -> not v.v_ok) vs) in
    if failing = 0 then Printf.sprintf "slo %d/%d ok" (List.length vs) (List.length vs)
    else Printf.sprintf "slo %d/%d FAILING" failing (List.length vs)

  let is_latency v = String.contains v.v_series '/' = false

  let render () =
    let vs = evaluate () in
    if vs = [] then "(no SLOs declared)"
    else
      String.concat "\n"
        (Printf.sprintf "%-24s %-42s %12s %12s  %s" "slo" "series" "observed"
           "limit" "status"
        :: List.map
             (fun v ->
               let fmt x =
                 if is_latency v then Printf.sprintf "%.3f ms" x
                 else Printf.sprintf "%.2f %%" (x *. 100.)
               in
               Printf.sprintf "%-24s %-42s %12s %12s  %s" v.v_slo v.v_series
                 (if v.v_count = 0 then "-" else fmt v.v_observed)
                 (fmt v.v_limit)
                 (if v.v_count = 0 then "no data"
                  else if v.v_ok then "ok"
                  else "FAIL"))
             vs)

  let to_json () =
    Obs_json.Obj
      [ ("schema", Obs_json.String "sheetscope-slo/v1");
        ("ok", Obs_json.Bool (ok ()));
        ("slos",
         Obs_json.List
           (List.map
              (fun v ->
                Obs_json.Obj
                  [ ("slo", Obs_json.String v.v_slo);
                    ("series", Obs_json.String v.v_series);
                    ("unit",
                     Obs_json.String
                       (if is_latency v then "ms" else "fraction"));
                    ("observed", Obs_json.Float v.v_observed);
                    ("limit", Obs_json.Float v.v_limit);
                    ("count", Obs_json.Int v.v_count);
                    ("ok", Obs_json.Bool v.v_ok) ])
              (evaluate ()))) ]
end

(* ---------- Chrome trace_event export ---------- *)

let event_to_json ev =
  let args =
    List.concat
      [ (if ev.uid = 0 then [] else [ ("uid", Obs_json.Int ev.uid) ]);
        (if ev.rows_in < 0 then []
         else [ ("rows_in", Obs_json.Int ev.rows_in) ]);
        (if ev.rows_out < 0 then []
         else [ ("rows_out", Obs_json.Int ev.rows_out) ]);
        [ ("depth", Obs_json.Int ev.depth) ] ]
  in
  Obs_json.Obj
    [ ("name", Obs_json.String ev.name);
      ("cat", Obs_json.String (if ev.kind = "" then "sheetmusiq" else ev.kind));
      ("ph", Obs_json.String "X");
      ("ts", Obs_json.Float (float_of_int ev.start_ns /. 1e3));
      ("dur", Obs_json.Float (float_of_int ev.dur_ns /. 1e3));
      ("pid", Obs_json.Int 1);
      ("tid", Obs_json.Int 1);
      ("args", Obs_json.Obj args) ]

let to_chrome_trace evs =
  sample_gc_gauges ();
  Obs_json.Obj
    [ ("traceEvents", Obs_json.List (List.map event_to_json evs));
      ("displayTimeUnit", Obs_json.String "ms");
      ("otherData",
       Obs_json.Obj
         [ ("exporter", Obs_json.String "sheetscope");
           (* ring truncation and nesting violations surfaced here so a
              truncated trace is visibly truncated, not silently thin *)
           ("dropped_events", Obs_json.Int (dropped ()));
           ("open_spans", Obs_json.Int (List.length !open_stack));
           ("nesting_ok", Obs_json.Bool (nesting_ok ()));
           ("metrics", Metrics.to_json ());
           ("histograms", Histogram.to_json ());
           ("slo", Slo.to_json ());
           ("profiles", Profile.to_json ()) ]) ]

let chrome_trace_string () = Obs_json.to_string ~pretty:true (to_chrome_trace (events ()))

(* One human-readable page: counters/gauges (GC included), latency
   histograms, the SLO summary, and the trace/recorder health lines
   (so a truncated ring or a nesting violation shows up in `metrics`,
   not only in exported JSON). *)
let metrics_report () =
  sample_gc_gauges ();
  String.concat "\n"
    [ Metrics.render ();
      "";
      Histogram.render ();
      "";
      Printf.sprintf "%-32s %10s" "slo.status" (Slo.summary ());
      Printf.sprintf "%-32s %10d" "trace.dropped_events" (dropped ());
      Printf.sprintf "%-32s %10d" "trace.open_spans"
        (List.length !open_stack);
      Printf.sprintf "%-32s %10s" "trace.nesting_ok"
        (if nesting_ok () then "true" else "false");
      Printf.sprintf "%-32s %10d" "flightrec.events" (Flightrec.length ());
      Printf.sprintf "%-32s %10d" "flightrec.dropped"
        (Flightrec.dropped ());
      Printf.sprintf "%-32s %10d" "profile.records" (Profile.length ());
      Printf.sprintf "%-32s %10d" "profile.dropped" (Profile.dropped ()) ]

let save_chrome_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace_string ()))
