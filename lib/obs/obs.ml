(* Sheetscope: span tracing, a metrics registry, and pluggable sinks.

   Everything here is deliberately single-threaded mutable state, like
   the materialization cache it observes. The off-sink fast path is a
   single mutable-bool test so instrumented code costs nothing when
   nobody is watching (property-tested byte-identical). *)

let src = Logs.Src.create "sheetscope" ~doc:"SheetMusiq instrumentation"

(* ---------- clock ---------- *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let epoch_ns = now_ns ()

let time f =
  let t0 = now_ns () in
  let x = f () in
  (x, float_of_int (now_ns () - t0) /. 1e6)

(* ---------- sinks ---------- *)

type sink = Off | Logs | Memory

let current_sink = ref Off

let sink () = !current_sink
let set_sink s = current_sink := s
let recording () = !current_sink <> Off

(* ---------- events and spans ---------- *)

type event = {
  name : string;
  kind : string;
  uid : int;  (** 0 when no sheet is involved *)
  depth : int;
  start_ns : int;  (** relative to process start *)
  dur_ns : int;
  rows_in : int;  (** -1 when unknown *)
  rows_out : int;  (** -1 when unknown *)
}

type span = {
  sid : int;  (* 0 is the dummy span handed out when the sink is off *)
  s_name : string;
  s_kind : string;
  s_uid : int;
  s_depth : int;
  s_start : int;
}

let dummy_span =
  { sid = 0; s_name = ""; s_kind = ""; s_uid = 0; s_depth = 0; s_start = 0 }

let span_counter = ref 0
let open_stack : int list ref = ref []
let violations = ref 0

let ring_capacity = ref 65536
let ring : event Queue.t = Queue.create ()
let dropped_events = ref 0

let record ev =
  match !current_sink with
  | Off -> ()
  | Memory ->
      if Queue.length ring >= !ring_capacity then begin
        ignore (Queue.pop ring);
        incr dropped_events
      end;
      Queue.push ev ring
  | Logs ->
      Logs.app ~src (fun m ->
          m "%*s%s%s %.3f ms%s%s" (2 * ev.depth) "" ev.name
            (if ev.kind = "" then "" else "[" ^ ev.kind ^ "]")
            (float_of_int ev.dur_ns /. 1e6)
            (if ev.rows_out < 0 then ""
             else Printf.sprintf " -> %d rows" ev.rows_out)
            (if ev.uid = 0 then "" else Printf.sprintf " (sheet #%d)" ev.uid))

let span ?(uid = 0) ?(kind = "") name =
  if not (recording ()) then dummy_span
  else begin
    incr span_counter;
    let s =
      { sid = !span_counter;
        s_name = name;
        s_kind = kind;
        s_uid = uid;
        s_depth = List.length !open_stack;
        s_start = now_ns () - epoch_ns }
    in
    open_stack := s.sid :: !open_stack;
    s
  end

let finish ?(rows_in = -1) ?(rows_out = -1) sp =
  if sp.sid <> 0 then begin
    (match !open_stack with
    | top :: rest when top = sp.sid -> open_stack := rest
    | _ ->
        (* closing out of order: count the violation but still remove
           the span so one mistake does not cascade *)
        incr violations;
        open_stack := List.filter (fun id -> id <> sp.sid) !open_stack);
    record
      { name = sp.s_name;
        kind = sp.s_kind;
        uid = sp.s_uid;
        depth = sp.s_depth;
        start_ns = sp.s_start;
        dur_ns = now_ns () - epoch_ns - sp.s_start;
        rows_in;
        rows_out }
  end

let with_span ?uid ?kind name f =
  let sp = span ?uid ?kind name in
  match f () with
  | x ->
      finish sp;
      x
  | exception e ->
      finish sp;
      raise e

let open_spans () = List.length !open_stack
let nesting_ok () = !violations = 0
let events () = List.of_seq (Queue.to_seq ring)
let dropped () = !dropped_events

let clear_events () =
  Queue.clear ring;
  open_stack := [];
  violations := 0;
  dropped_events := 0

(* Completed events are well-formed when every pair of overlapping
   intervals nests: the deeper one lies inside the shallower one. *)
let events_well_formed evs =
  let overlap a b =
    a.start_ns < b.start_ns + b.dur_ns && b.start_ns < a.start_ns + a.dur_ns
  in
  let contains outer inner =
    outer.start_ns <= inner.start_ns
    && inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
  in
  let arr = Array.of_list evs in
  let ok = ref true in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j && a.depth <> b.depth && overlap a b then
            let outer, inner = if a.depth < b.depth then (a, b) else (b, a) in
            if not (contains outer inner) then ok := false)
        arr)
    arr;
  !ok

(* ---------- metrics ---------- *)

module Metrics = struct
  type mkind = Counter | Gauge

  type m = { m_name : string; m_kind : mkind; mutable value : int }

  let registry : (string, m) Hashtbl.t = Hashtbl.create 64

  let find name m_kind =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = { m_name = name; m_kind; value = 0 } in
        Hashtbl.replace registry name m;
        m

  let counter name = find name Counter
  let gauge name = find name Gauge

  let incr ?(by = 1) m = m.value <- m.value + by
  let set m v = m.value <- v
  let get m = m.value
  let name m = m.m_name
  let is_counter m = m.m_kind = Counter

  let value_of name =
    match Hashtbl.find_opt registry name with
    | Some m -> m.value
    | None -> 0

  let snapshot () =
    Hashtbl.fold (fun name m acc -> (name, m.value) :: acc) registry []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset () = Hashtbl.iter (fun _ m -> m.value <- 0) registry

  let to_json () =
    Obs_json.Obj
      (List.map (fun (name, v) -> (name, Obs_json.Int v)) (snapshot ()))

  let render () =
    let snap = snapshot () in
    if snap = [] then "(no metrics recorded)"
    else
      String.concat "\n"
        (List.map (fun (name, v) -> Printf.sprintf "%-32s %10d" name v) snap)
end

(* Well-known metric names: registered up front so a snapshot always
   carries the full record, zeros included. *)
let k_engine_ops = "engine.ops"
let k_engine_errors = "engine.errors"
let k_cache_hits = "materialize.cache_hits"
let k_cache_misses = "materialize.cache_misses"
let k_cache_evictions = "materialize.cache_evictions"
let k_cache_seeds = "materialize.cache_seeds"
let k_full_replays = "materialize.full_replays"
let k_incremental_derivations = "incremental.derivations"
let k_incremental_fallbacks = "incremental.full_fallbacks"
let k_plan_nodes = "plan.nodes_executed"
let k_plan_rows_in = "plan.rows_in"
let k_plan_rows_out = "plan.rows_out"
let k_undo_depth = "session.undo_depth"
let k_redo_depth = "session.redo_depth"
let k_sql_translations = "sql.translations"
let k_sql_inverse_translations = "sql.inverse_translations"
let k_sql_executions = "sql.executions"

let () =
  List.iter
    (fun k -> ignore (Metrics.counter k))
    [ k_engine_ops; k_engine_errors; k_cache_hits; k_cache_misses;
      k_cache_evictions; k_cache_seeds; k_full_replays;
      k_incremental_derivations; k_incremental_fallbacks; k_plan_nodes;
      k_plan_rows_in; k_plan_rows_out; k_sql_translations;
      k_sql_inverse_translations; k_sql_executions ];
  List.iter (fun k -> ignore (Metrics.gauge k)) [ k_undo_depth; k_redo_depth ]

type core_stats = {
  engine_ops : int;
  engine_errors : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_seeds : int;
  full_replays : int;
  incremental_derivations : int;
  incremental_fallbacks : int;
  plan_nodes : int;
  plan_rows_in : int;
  plan_rows_out : int;
  undo_depth : int;
  redo_depth : int;
  sql_translations : int;
  sql_inverse_translations : int;
  sql_executions : int;
}

let core_stats () =
  let v = Metrics.value_of in
  { engine_ops = v k_engine_ops;
    engine_errors = v k_engine_errors;
    cache_hits = v k_cache_hits;
    cache_misses = v k_cache_misses;
    cache_evictions = v k_cache_evictions;
    cache_seeds = v k_cache_seeds;
    full_replays = v k_full_replays;
    incremental_derivations = v k_incremental_derivations;
    incremental_fallbacks = v k_incremental_fallbacks;
    plan_nodes = v k_plan_nodes;
    plan_rows_in = v k_plan_rows_in;
    plan_rows_out = v k_plan_rows_out;
    undo_depth = v k_undo_depth;
    redo_depth = v k_redo_depth;
    sql_translations = v k_sql_translations;
    sql_inverse_translations = v k_sql_inverse_translations;
    sql_executions = v k_sql_executions }

(* ---------- Chrome trace_event export ---------- *)

let event_to_json ev =
  let args =
    List.concat
      [ (if ev.uid = 0 then [] else [ ("uid", Obs_json.Int ev.uid) ]);
        (if ev.rows_in < 0 then []
         else [ ("rows_in", Obs_json.Int ev.rows_in) ]);
        (if ev.rows_out < 0 then []
         else [ ("rows_out", Obs_json.Int ev.rows_out) ]);
        [ ("depth", Obs_json.Int ev.depth) ] ]
  in
  Obs_json.Obj
    [ ("name", Obs_json.String ev.name);
      ("cat", Obs_json.String (if ev.kind = "" then "sheetmusiq" else ev.kind));
      ("ph", Obs_json.String "X");
      ("ts", Obs_json.Float (float_of_int ev.start_ns /. 1e3));
      ("dur", Obs_json.Float (float_of_int ev.dur_ns /. 1e3));
      ("pid", Obs_json.Int 1);
      ("tid", Obs_json.Int 1);
      ("args", Obs_json.Obj args) ]

let to_chrome_trace evs =
  Obs_json.Obj
    [ ("traceEvents", Obs_json.List (List.map event_to_json evs));
      ("displayTimeUnit", Obs_json.String "ms");
      ("otherData",
       Obs_json.Obj
         [ ("exporter", Obs_json.String "sheetscope");
           ("dropped_events", Obs_json.Int !dropped_events);
           ("metrics", Metrics.to_json ()) ]) ]

let chrome_trace_string () = Obs_json.to_string ~pretty:true (to_chrome_trace (events ()))

let save_chrome_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace_string ()))
