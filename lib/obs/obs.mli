(** Sheetscope: the measurement layer under the engine.

    Three pieces (DESIGN.md §7):

    - {e span tracing}: [span]/[finish] bracket a unit of work with
      monotone-enough wall timings, nestable, tagged with the sheet
      [uid] and an operator [kind]. The engine, the materializer's
      replay strata, the incremental deriver, and every plan node are
      bracketed this way.
    - {e metrics}: a process-wide registry of named counters and
      gauges (cache hits/misses, replays vs derivations, rows per
      plan node, undo/redo depth, SQL translation counts),
      snapshotable as an association list, a typed {!core_stats}
      record, or JSON.
    - {e sinks}: where completed spans go. [Off] (the default) makes
      [span] a single mutable-bool test returning a shared dummy —
      instrumented code paths are property-tested byte-identical to
      uninstrumented ones. [Logs] prints each completed span through
      the [sheetscope] {!Logs.Src.t}; [Memory] appends to a bounded
      in-memory ring, from which {!to_chrome_trace} exports a Chrome
      [about://tracing] / Perfetto-loadable JSON file.

    Counters always count (an [int] increment per event, sink or no
    sink); spans only materialize under an active sink. All state is
    single-threaded, like the engine it observes. *)

(** {1 Clock} *)

val now_ns : unit -> int
(** Monotone clock in integer nanoseconds: wall readings clamped so
    the value never decreases within a process (NTP steps and VM
    migrations cannot produce a negative span or histogram sample). *)

val set_raw_clock_for_tests : (unit -> int) option -> unit
(** Swap the raw reading under the monotone clamp ([None] restores the
    wall clock and re-anchors). Test-only: lets the clock-regression
    suite drive time backwards and observe that durations stay
    non-negative. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall
    time in milliseconds (used by [\timing] and the TUI status
    segment). *)

(** {1 Sinks} *)

type sink = Off | Logs | Memory

val sink : unit -> sink
val set_sink : sink -> unit

val recording : unit -> bool
(** [sink () <> Off]. Instrumented code uses this to skip computing
    expensive span annotations (e.g. row counts) when nobody
    listens. *)

(** {1 Spans} *)

type event = {
  name : string;
  kind : string;
  uid : int;  (** 0 when no sheet is involved *)
  depth : int;  (** nesting depth at entry *)
  start_ns : int;  (** relative to process start *)
  dur_ns : int;
  rows_in : int;  (** -1 when unknown *)
  rows_out : int;  (** -1 when unknown *)
}

type span

val span : ?uid:int -> ?kind:string -> string -> span
(** Open a span. Constant-time no-op when the sink is [Off]. *)

val finish : ?rows_in:int -> ?rows_out:int -> span -> unit
(** Close a span, emitting the completed {!event} to the sink.
    Closing out of order is tolerated (the span is removed wherever
    it sits) but counted — see {!nesting_ok}. *)

val with_span : ?uid:int -> ?kind:string -> string -> (unit -> 'a) -> 'a
(** Bracket a thunk; the span is closed on exceptions too. *)

val emit :
  ?uid:int ->
  ?kind:string ->
  ?rows_in:int ->
  ?rows_out:int ->
  start_ns:int ->
  dur_ns:int ->
  string ->
  unit
(** Record an already-completed span from a timing taken elsewhere
    ([start_ns] is an absolute {!now_ns} reading). Used by the morsel
    scheduler ({!Sheet_rel.Par}), whose worker domains must not touch
    the single-writer event ring: workers stamp start/duration into
    per-morsel slots and the coordinator emits them after the join.
    No-op when the sink is [Off]. *)

val open_spans : unit -> int
(** Number of spans opened but not yet finished. 0 after any balanced
    workload — the [@obs] gate fails otherwise. *)

val nesting_ok : unit -> bool
(** No span was ever closed out of order (since {!clear_events}). *)

val events : unit -> event list
(** Contents of the [Memory] ring, oldest first. *)

val dropped : unit -> int
(** Events evicted from the ring since {!clear_events}. *)

val clear_events : unit -> unit
(** Empty the ring and reset the open-span stack, the nesting-violation
    flag, and the dropped count. Does not touch metrics. *)

val events_well_formed : event list -> bool
(** Pairwise interval check: any two overlapping events at different
    depths must nest (the deeper inside the shallower). *)

(** {1 Metrics} *)

module Metrics : sig
  type m

  val counter : string -> m
  (** Intern a counter by name (returns the existing one if
      registered). *)

  val gauge : string -> m

  val incr : ?by:int -> m -> unit
  val set : m -> int -> unit
  val get : m -> int
  val name : m -> string
  val is_counter : m -> bool

  val value_of : string -> int
  (** 0 when the name was never registered. *)

  val snapshot : unit -> (string * int) list
  (** Sorted by name. *)

  val reset : unit -> unit
  (** Zero every registered metric (registrations survive). *)

  val to_json : unit -> Obs_json.t
  val render : unit -> string
end

(** {1 Latency histograms}

    The third metric family (DESIGN.md §8): log-bucketed latency
    histograms with fixed boundaries — four buckets per decade from
    100 ns to 10 s plus an overflow bucket — so recording is O(1),
    histograms merge by adding bucket counts, and snapshots from
    different runs are comparable. Count, sum and max are exact;
    p50/p90/p99 are bucket estimates (linear interpolation inside the
    bucket holding the rank, never above the observed max). Like
    counters, histograms always record — one sample costs a bucket
    lookup and four int updates, sink or no sink. *)

module Histogram : sig
  type h

  val boundaries : int array
  (** The 33 inclusive upper bucket edges, strictly increasing,
      [boundaries.(0) = 100] ns .. [boundaries.(32) = 10^10] ns. *)

  val histogram : string -> h
  (** Intern by name (returns the existing histogram if registered) —
      the analogue of {!Metrics.counter}. *)

  val make : string -> h
  (** A detached, unregistered histogram (merging grounds, tests). *)

  val record : h -> int -> unit
  (** Record one duration in nanoseconds (negative samples clamp
      to 0). O(1). *)

  val count : h -> int
  val sum_ns : h -> int
  val max_ns : h -> int
  val name : h -> string

  val percentile : h -> float -> float
  (** [percentile h phi] estimates the [phi]-quantile in ns; 0 when
      empty. Monotone in [phi] and never above [max_ns h]. *)

  val merge : h -> h -> h
  (** Bucketwise sum (detached result, named after the left operand).
      Commutative and associative up to {!equal}. *)

  val equal : h -> h -> bool
  (** Data equality (bucket counts, count, sum, max) — names are not
      compared. *)

  type snapshot = {
    s_name : string;
    s_count : int;
    s_sum_ns : int;
    s_max_ns : int;
    s_p50_ns : float;
    s_p90_ns : float;
    s_p99_ns : float;
    s_buckets : (int * int) list;
        (** (inclusive upper edge ns, count), nonzero buckets only;
            the overflow bucket's edge is [max_int] *)
  }

  val snapshot_of : h -> snapshot

  val snapshots : unit -> snapshot list
  (** Every registered histogram, sorted by name. *)

  val reset : unit -> unit
  (** Zero every registered histogram (registrations survive). *)

  val to_json : unit -> Obs_json.t
  val render : unit -> string
end

(** {2 Well-known histogram names} *)

val h_engine_apply : string
val h_materialize_full : string
val h_materialize_stratum : string
val h_incremental_derive : string

val h_plan_node_prefix : string
(** ["plan.node."] — the interpreter appends the node kind. *)

val h_sql_run : string

val h_par_morsel : string
(** One sample per morsel executed by a parallel scan region. *)

(** {2 Well-known metric names}

    Registered up front so snapshots always carry the full set, zeros
    included. The instrumented modules intern these same names. *)

val k_engine_ops : string
val k_engine_errors : string
val k_cache_requests : string
(** Every [Materialize.full_cached] lookup; always equals
    [k_cache_hits + k_cache_hits_subsumed + k_cache_misses]
    (asserted by the [@obs] gate). *)

val k_cache_hits : string
(** Exact hits: the sheet's own uid was cached. *)

val k_cache_hits_subsumed : string
(** Semantic hits: a cached state was proven to subsume the request
    and its materialization was re-filtered/re-sorted instead of
    replaying the base data. *)

val k_cache_misses : string
val k_cache_evictions : string
val k_cache_seeds : string
val k_full_replays : string
val k_incremental_derivations : string
val k_incremental_fallbacks : string
val k_plan_nodes : string
val k_plan_rows_in : string
val k_plan_rows_out : string
val k_undo_depth : string
val k_redo_depth : string
val k_sql_translations : string
val k_sql_inverse_translations : string
val k_sql_executions : string

val k_par_domains : string
(** Gauge: resolved domain count of the most recent parallel region. *)

val k_par_morsels : string
(** Counter: morsels executed (1 per sequential region). *)

val k_par_scans : string
(** Counter: scan regions that actually ran multi-domain. *)

val k_col_columns : string
(** Counter: columns materialized by [Columnar.of_rows]. *)

val k_col_dict_entries : string
(** Counter: distinct strings interned into column dictionaries. *)

val k_col_sel_rows_in : string
(** Counter: candidate rows entering compiled selection vectors;
    together with {!k_col_sel_rows_out} this gives the average
    selection-vector density ([@obs] asserts out <= in). *)

val k_col_sel_rows_out : string

(** The registry's well-known slice as a typed record. *)
type core_stats = {
  engine_ops : int;
  engine_errors : int;
  cache_requests : int;
  cache_hits : int;
  cache_hits_subsumed : int;
  cache_misses : int;
  cache_evictions : int;
  cache_seeds : int;
  full_replays : int;
  incremental_derivations : int;
  incremental_fallbacks : int;
  plan_nodes : int;
  plan_rows_in : int;
  plan_rows_out : int;
  undo_depth : int;
  redo_depth : int;
  sql_translations : int;
  sql_inverse_translations : int;
  sql_executions : int;
}

val core_stats : unit -> core_stats

(** {1 Session flight recorder}

    A bounded ring of structured events — operators applied/rejected,
    undo/redo, materialization-cache hit/miss/eviction, SQL
    translations, and slow-op markers over the configurable threshold
    — recorded {e always} (independently of the span sink) so a slow
    or wedged session can be diagnosed post hoc: `flightrec` in the
    REPL, `\flightrec` in sheetsql, the [F] pane in the TUI. The
    threshold comes from [SHEETSCOPE_SLOW_MS] (default 100). *)

module Flightrec : sig
  type event = {
    at_ns : int;  (** relative to process start *)
    f_kind : string;
        (** "op", "op-rejected", "undo", "redo", "cache-hit-exact",
            "cache-hit-subsumed", "cache-miss", "cache-eviction",
            "sql-translation", "slow-op" *)
    f_label : string;
    f_uid : int;  (** 0 when no sheet is involved *)
    f_dur_ns : int;  (** -1 when unknown *)
  }

  val record : ?uid:int -> ?dur_ns:int -> kind:string -> string -> unit
  (** Append one event (evicting the oldest past capacity). *)

  val events : unit -> event list
  (** Ring contents, oldest first. *)

  val dropped : unit -> int
  (** Events evicted since {!clear}. *)

  val clear : unit -> unit

  val set_capacity : int -> unit
  (** Ring capacity (default 512, clamped to >= 1). *)

  val slow_threshold_ns : unit -> int
  (** Current slow-op threshold; initialized from [SHEETSCOPE_SLOW_MS]
      (milliseconds, default 100). *)

  val set_slow_threshold_ms : float -> unit

  val to_json : unit -> Obs_json.t
  (** ["sheetscope-flightrec/v1"]: threshold, dropped count, and the
      event list — round-trips through {!Obs_json.parse}. *)

  val render : ?limit:int -> unit -> string
  (** Human-readable dump (most recent [limit] events when given). *)
end

(** {1 Chrome trace export} *)

val to_chrome_trace : event list -> Obs_json.t
(** [trace_event]-format JSON ("ph": "X" complete events, microsecond
    timestamps) with the current metrics snapshot under [otherData]. *)

val chrome_trace_string : unit -> string
(** {!to_chrome_trace} of the current [Memory] ring, pretty-printed. *)

val save_chrome_trace : path:string -> unit
(** Write {!chrome_trace_string} to a file ([--trace out.json] in
    [experiments] and [bench]). *)

val metrics_report : unit -> string
(** The full observability snapshot as one human-readable block:
    counters/gauges, histogram percentiles, trace-ring health
    (dropped events, open spans, nesting) and flight-recorder depth —
    what the REPL [metrics] command prints. *)
