(** Sheetscope: the measurement layer under the engine.

    Four pieces (DESIGN.md §8):

    - {e span tracing}: [span]/[finish] bracket a unit of work with
      monotone-enough wall timings, nestable, tagged with the sheet
      [uid] and an operator [kind]. The engine, the materializer's
      replay strata, the incremental deriver, and every plan node are
      bracketed this way.
    - {e metrics}: a process-wide registry of named counters, gauges
      and latency histograms (cache hits/misses, replays vs
      derivations, rows per plan node, undo/redo depth, GC activity,
      per-op latency), snapshotable as an association list, a typed
      {!core_stats} record, or JSON.
    - {e sinks}: where completed spans go. [Off] (the default) makes
      [span] a single mutable-bool test returning a shared dummy —
      instrumented code paths are property-tested byte-identical to
      uninstrumented ones. [Logs] prints each completed span through
      the [sheetscope] {!Logs.Src.t}; [Memory] appends to a bounded
      in-memory ring, from which {!to_chrome_trace} exports a Chrome
      [about://tracing] / Perfetto-loadable JSON file.
    - {e SLOs}: latency and error-rate targets declared in one place
      ({!Slo}), evaluated against the live registry including every
      labeled per-session series.

    Counters and histograms always count (sink or no sink) and are
    {e domain-safe} since v3: values live in per-domain sharded atomic
    cells with exact merge-on-read, so concurrent totals equal a
    single-writer run exactly, and the event ring behind [emit] is
    mutex-protected. Span {e nesting} state ([span]/[finish]) remains
    single-writer — the session's driving thread opens and closes
    spans; worker domains record completed work via {!emit}. *)

(** {1 Clock} *)

val now_ns : unit -> int
(** Monotone clock in integer nanoseconds: wall readings clamped so
    the value never decreases within a process (NTP steps and VM
    migrations cannot produce a negative span or histogram sample).
    The watermark is atomic, so the guarantee holds across domains. *)

val set_raw_clock_for_tests : (unit -> int) option -> unit
(** Swap the raw reading under the monotone clamp ([None] restores the
    wall clock and re-anchors). Test-only: lets the clock-regression
    suite drive time backwards and observe that durations stay
    non-negative. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall
    time in milliseconds (used by [\timing] and the TUI status
    segment). *)

(** {1 Sinks} *)

type sink = Off | Logs | Memory

val sink : unit -> sink
val set_sink : sink -> unit

val recording : unit -> bool
(** [sink () <> Off]. Instrumented code uses this to skip computing
    expensive span annotations (e.g. row counts) when nobody
    listens. *)

(** {1 Spans} *)

type event = {
  name : string;
  kind : string;
  uid : int;  (** 0 when no sheet is involved *)
  depth : int;  (** nesting depth at entry *)
  start_ns : int;  (** relative to process start *)
  dur_ns : int;
  rows_in : int;  (** -1 when unknown *)
  rows_out : int;  (** -1 when unknown *)
}

type span

val span : ?uid:int -> ?kind:string -> string -> span
(** Open a span. Constant-time no-op when the sink is [Off]. When
    recording, GC gauges are refreshed ({!sample_gc_gauges}).
    Single-writer: only the session's driving thread may open spans. *)

val finish : ?rows_in:int -> ?rows_out:int -> span -> unit
(** Close a span, emitting the completed {!event} to the sink.
    Closing out of order is tolerated (the span is removed wherever
    it sits) but counted — see {!nesting_ok}. *)

val with_span : ?uid:int -> ?kind:string -> string -> (unit -> 'a) -> 'a
(** Bracket a thunk; the span is closed on exceptions too. *)

val current_depth : unit -> int
(** The driving thread's current span-nesting depth — captured before
    a parallel fan-out and passed to {!emit} so worker events nest
    under the span that spawned them. *)

val emit :
  ?uid:int ->
  ?kind:string ->
  ?rows_in:int ->
  ?rows_out:int ->
  ?depth:int ->
  start_ns:int ->
  dur_ns:int ->
  string ->
  unit
(** Record an already-completed span from a timing taken elsewhere
    ([start_ns] is an absolute {!now_ns} reading). Safe from any
    domain — the ring is mutex-protected — so morsel workers
    ({!Sheet_rel.Par}) record their own morsels live. [depth]
    defaults to the calling thread's current nesting depth; parallel
    callers pass the coordinator's depth captured before the
    fan-out. No-op when the sink is [Off]. *)

val open_spans : unit -> int
(** Number of spans opened but not yet finished. 0 after any balanced
    workload — the [@obs] gate fails otherwise. *)

val nesting_ok : unit -> bool
(** No span was ever closed out of order (since {!clear_events}). *)

val events : unit -> event list
(** Contents of the [Memory] ring, oldest first. *)

val dropped : unit -> int
(** Events evicted from the ring since {!clear_events}. *)

val clear_events : unit -> unit
(** Empty the ring and reset the open-span stack, the nesting-violation
    flag, and the dropped count. Does not touch metrics. *)

val events_well_formed : event list -> bool
(** Pairwise interval check: any two overlapping events at different
    depths must nest (the deeper inside the shallower). *)

(** {1 Labels}

    A bounded extra dimension on counters and histograms: a labeled
    series is a full registry entry named [base ^ "{k=v,...}"] (keys
    sorted, characters ['{' '}' ',' '='] sanitized to ['_']), so
    snapshots, JSON export and SLO evaluation see per-session and
    per-task series with no extra machinery. Cardinality is hard-capped
    per base name ({!label_cap}, default 64): past the cap, every new
    label set collapses into one shared ["{__overflow__}"] series, so
    a buggy or hostile labeler creates at most cap + 1 entries per
    family. *)

module Labels : sig
  type t

  val empty : t
  val is_empty : t -> bool

  val v : (string * string) list -> t
  (** Build a label set: keys deduped (last binding wins), sorted,
      and sanitized. *)

  val pairs : t -> (string * string) list
  (** Sorted key/value pairs. *)

  val to_string : t -> string
  (** ["{k=v,k2=v2}"], or [""] for {!empty} — exactly the suffix
      appended to the base series name. *)
end

val series_base : string -> string
(** The part of a series name before the first ['{'] — maps a labeled
    series back to its family. *)

val overflow_suffix : string
(** ["{__overflow__}"] — the suffix of the shared past-the-cap
    series. *)

val label_cap : unit -> int
val set_label_cap : int -> unit
(** Per-family cardinality cap (clamped to >= 1); applies to label
    sets admitted after the call. *)

val set_ambient_labels : Labels.t -> unit
(** Install the ambient label set the hot paths (engine apply, SQL
    run) stamp on their histograms — the shells set
    [session=<name>] at startup, the gates set [task=<id>] per
    replay. Single-writer, like the span stack. *)

val ambient_labels : unit -> Labels.t

(** {1 Metrics}

    Counters and gauges are sharded over per-domain atomic cells:
    {!Metrics.incr} is safe from any domain and {!Metrics.get} sums
    the shards, so totals are exact whatever the interleaving. Gauges
    are last-write-wins. *)

module Metrics : sig
  type m

  val counter : string -> m
  (** Intern a counter by name (returns the existing one if
      registered). *)

  val gauge : string -> m

  val counter_labeled : string -> Labels.t -> m
  (** Intern the labeled series [name ^ Labels.to_string labels],
      subject to the family cardinality cap (the overflow series past
      it). With {!Labels.empty} this is [counter]. *)

  val incr : ?by:int -> m -> unit
  val set : m -> int -> unit
  val get : m -> int
  val name : m -> string
  val is_counter : m -> bool

  val value_of : string -> int
  (** 0 when the name was never registered. *)

  val snapshot : unit -> (string * int) list
  (** Sorted by (family base, label suffix): a base series is followed
      directly by its labeled variants — deterministic and stable
      under label admission order. *)

  val counters_snapshot : unit -> (string * int) list
  (** Counters only (no gauges), in {!snapshot} order — the
      domain-count identity gates compare these across runs. *)

  val reset : unit -> unit
  (** Zero every registered metric (registrations survive). *)

  val to_json : unit -> Obs_json.t
  val render : unit -> string
end

(** {1 Latency histograms}

    The third metric family (DESIGN.md §8): log-bucketed latency
    histograms with fixed boundaries — four buckets per decade from
    100 ns to 10 s plus an overflow bucket — so recording is O(1),
    histograms merge by adding bucket counts, and snapshots from
    different runs are comparable. Count, sum and max are exact;
    p50/p90/p99 are bucket estimates (linear interpolation inside the
    bucket holding the rank, never above the observed max). Like
    counters, histograms always record — sink or no sink — and from
    any domain: samples land in lazily-allocated per-domain shards
    and every reader merges them, so concurrent totals are exact. *)

module Histogram : sig
  type h

  val boundaries : int array
  (** The 33 inclusive upper bucket edges, strictly increasing,
      [boundaries.(0) = 100] ns .. [boundaries.(32) = 10^10] ns. *)

  val histogram : string -> h
  (** Intern by name (returns the existing histogram if registered) —
      the analogue of {!Metrics.counter}. *)

  val histogram_labeled : string -> Labels.t -> h
  (** Intern the labeled series, subject to the family cardinality
      cap — the analogue of {!Metrics.counter_labeled}. *)

  val make : string -> h
  (** A detached, unregistered histogram (merging grounds, tests). *)

  val record : h -> int -> unit
  (** Record one duration in nanoseconds (negative samples clamp
      to 0). O(1); safe from any domain. *)

  val count : h -> int
  val sum_ns : h -> int
  val max_ns : h -> int
  val name : h -> string

  val percentile : h -> float -> float
  (** [percentile h phi] estimates the [phi]-quantile in ns; 0 when
      empty. Monotone in [phi] and never above [max_ns h]. *)

  val merge : h -> h -> h
  (** Bucketwise sum (detached result, named after the left operand).
      Commutative and associative up to {!equal}, with the empty
      histogram as identity. *)

  val equal : h -> h -> bool
  (** Data equality (bucket counts, count, sum, max) — names are not
      compared. *)

  type snapshot = {
    s_name : string;
    s_count : int;
    s_sum_ns : int;
    s_max_ns : int;
    s_p50_ns : float;
    s_p90_ns : float;
    s_p99_ns : float;
    s_buckets : (int * int) list;
        (** (inclusive upper edge ns, count), nonzero buckets only;
            the overflow bucket's edge is [max_int] *)
  }

  val snapshot_of : h -> snapshot

  val snapshots : unit -> snapshot list
  (** Every registered histogram, sorted by (family base, label
      suffix) — labeled series directly after their base. *)

  val counts_snapshot : unit -> (string * int) list
  (** (name, exact sample count) for every registered histogram, in
      {!snapshots} order — the duration-free slice the domain-count
      identity gates compare across runs. *)

  val series_of_base : string -> h list
  (** Every registered series of one family — the base histogram plus
      its labeled variants — sorted by name. What {!Slo} evaluation
      walks. *)

  val reset : unit -> unit
  (** Zero every registered histogram (registrations survive). *)

  val to_json : unit -> Obs_json.t
  val render : unit -> string
end

(** {2 Well-known histogram names} *)

val h_engine_apply : string
val h_materialize_full : string
val h_materialize_stratum : string
val h_incremental_derive : string

val h_plan_node_prefix : string
(** ["plan.node."] — the interpreter appends the node kind. *)

val h_sql_run : string

val h_par_morsel : string
(** One sample per morsel executed by a parallel scan region —
    recorded live by the executing domain. *)

(** {2 Well-known metric names}

    Registered up front so snapshots always carry the full set, zeros
    included. The instrumented modules intern these same names. *)

val k_engine_ops : string
val k_engine_errors : string
val k_cache_requests : string
(** Every [Materialize.full_cached] lookup; always equals
    [k_cache_hits + k_cache_hits_subsumed + k_cache_misses]
    (asserted by the [@obs] gate). *)

val k_cache_hits : string
(** Exact hits: the sheet's own uid was cached. *)

val k_cache_hits_subsumed : string
(** Semantic hits: a cached state was proven to subsume the request
    and its materialization was re-filtered/re-sorted instead of
    replaying the base data. *)

val k_cache_misses : string
val k_cache_evictions : string
val k_cache_seeds : string
val k_full_replays : string
val k_incremental_derivations : string
val k_incremental_fallbacks : string
val k_plan_nodes : string
val k_plan_rows_in : string
val k_plan_rows_out : string
val k_undo_depth : string
val k_redo_depth : string
val k_sql_translations : string
val k_sql_inverse_translations : string
val k_sql_executions : string

val k_par_domains : string
(** Gauge: resolved domain count of the most recent parallel region. *)

val k_par_morsels : string
(** Counter: morsels executed (1 per sequential region) — since v3
    ticked live by the executing domain. *)

val k_par_scans : string
(** Counter: scan regions that split into more than one morsel. *)

val k_col_columns : string
(** Counter: columns materialized by [Columnar.of_rows]. *)

val k_col_dict_entries : string
(** Counter: distinct strings interned into column dictionaries. *)

val k_col_sel_rows_in : string
(** Counter: candidate rows entering compiled selection vectors;
    together with {!k_col_sel_rows_out} this gives the average
    selection-vector density ([@obs] asserts out <= in). *)

val k_col_sel_rows_out : string

(** {2 Runtime telemetry}

    GC gauges sampled at span boundaries and on every metrics/trace
    export, so a trace carries the collector's view of the workload
    that produced it. *)

val k_gc_minor : string
(** Gauge: minor collections since process start. *)

val k_gc_major : string
(** Gauge: major collection cycles since process start. *)

val k_gc_promoted : string
(** Gauge: words promoted minor → major since process start. *)

val k_gc_heap : string
(** Gauge: current major-heap size in words. *)

val sample_gc_gauges : unit -> unit
(** Refresh the GC gauges from [Gc.quick_stat] now. Called
    automatically by [span]/[finish] (when recording),
    {!metrics_report} and {!to_chrome_trace}. *)

(** The registry's well-known slice as a typed record. *)
type core_stats = {
  engine_ops : int;
  engine_errors : int;
  cache_requests : int;
  cache_hits : int;
  cache_hits_subsumed : int;
  cache_misses : int;
  cache_evictions : int;
  cache_seeds : int;
  full_replays : int;
  incremental_derivations : int;
  incremental_fallbacks : int;
  plan_nodes : int;
  plan_rows_in : int;
  plan_rows_out : int;
  undo_depth : int;
  redo_depth : int;
  sql_translations : int;
  sql_inverse_translations : int;
  sql_executions : int;
}

val core_stats : unit -> core_stats

(** {1 Session flight recorder}

    A bounded ring of structured events — operators applied/rejected,
    undo/redo, materialization-cache hit/miss/eviction, SQL
    translations, slow-op markers over the configurable threshold,
    and one-time configuration warnings — recorded {e always}
    (independently of the span sink) so a slow or wedged session can
    be diagnosed post hoc: `flightrec` in the REPL, `\flightrec` in
    sheetsql, the [F] pane in the TUI. The threshold comes from
    [SHEETSCOPE_SLOW_MS] (default 100; an invalid value falls back
    with an ["env-warning"] event — see {!Env}). *)

module Flightrec : sig
  type event = {
    at_ns : int;  (** relative to process start *)
    f_kind : string;
        (** "op", "op-rejected", "undo", "redo", "cache-hit-exact",
            "cache-hit-subsumed", "cache-miss", "cache-eviction",
            "sql-translation", "slow-op", "env-warning" *)
    f_label : string;
    f_uid : int;  (** 0 when no sheet is involved *)
    f_dur_ns : int;  (** -1 when unknown *)
  }

  val record : ?uid:int -> ?dur_ns:int -> kind:string -> string -> unit
  (** Append one event (evicting the oldest past capacity). Safe from
      any domain (mutex-protected ring). *)

  val events : unit -> event list
  (** Ring contents, oldest first. *)

  val drain : unit -> event list
  (** Atomically return the ring contents (oldest first) and empty the
      ring — one lock acquisition, so events recorded concurrently are
      either in the returned batch or still in the ring, never lost.
      This is what a Sheetserve connection handler must use to take
      its per-connection black box: an [events]-then-[clear] sequence
      destroys whatever other connections recorded in between. Leaves
      the capacity-eviction {!dropped} count untouched. *)

  val length : unit -> int
  (** Current ring depth. *)

  val dropped : unit -> int
  (** Events evicted since {!clear}. *)

  val clear : unit -> unit

  val set_capacity : int -> unit
  (** Ring capacity (default 512, clamped to >= 1). *)

  val default_slow_ms : float
  (** 100. — the fallback when [SHEETSCOPE_SLOW_MS] is unset or
      invalid. *)

  val slow_threshold_ns : unit -> int
  (** Current slow-op threshold; initialized from [SHEETSCOPE_SLOW_MS]
      (milliseconds, default 100). *)

  val set_slow_threshold_ms : float -> unit

  val to_json : unit -> Obs_json.t
  (** ["sheetscope-flightrec/v1"]: threshold, dropped count, and the
      event list — round-trips through {!Obs_json.parse}. *)

  val render : ?limit:int -> unit -> string
  (** Human-readable dump (most recent [limit] events when given). *)
end

(** {1 Environment knobs}

    Centralized parsing of Sheetscope/SheetMusiq environment
    variables. An invalid value is rejected exactly as before, but no
    longer silently: the first rejection per variable records an
    ["env-warning"] flight-recorder event naming the variable, the
    rejected value and the fallback used. *)

module Env : sig
  val int_at_least : min:int -> fallback:string -> string -> int option
  (** [int_at_least ~min ~fallback var] parses [var] as an integer
      [>= min]. [None] when unset or invalid; an invalid (present but
      unparsable or below [min]) value warns once per variable,
      describing [fallback]. *)

  val float_at_least : min:float -> fallback:string -> string -> float option

  val reset_warnings_for_tests : unit -> unit
  (** Forget which variables already warned, so tests can observe the
      warn-once behavior repeatedly. *)
end

(** {1 Per-query execution profiles (Sheetdoctor)}

    A bounded ring of per-materialization records — the execution
    black box for one query: cache outcome, full-replay vs incremental
    strategy, a node-by-node breakdown (wall time, rows in/out,
    allocation deltas from [Gc.allocated_bytes]), and {e path
    attribution} — which filter predicates ran as compiled selection
    vectors and which fell back to the row path (naming the non-total
    subtree), plus the morsel/domain shape of the parallel scans
    underneath ([par.*] / [columnar.sel_rows_*] counter deltas over
    the region).

    Collection mirrors the flight recorder: always on, independent of
    the span sink, bounded with a drop counter. Capacity comes from
    [SHEETSCOPE_PROFILE_CAP] (default 64; invalid values warn once —
    see {!Env}). The region stack is {e single-writer} like span
    nesting: only the session's driving thread calls
    {!Profile.enter}/{!Profile.commit}/[note_*]; worker domains
    contribute only through the sharded counters whose deltas the
    region snapshots, so records are exact under parallelism and
    identical (modulo timings/allocations/domain count) across domain
    counts — asserted by the doctor gate. *)

module Profile : sig
  type node = {
    n_kind : string;  (** e.g. ["filter"], ["sort"], ["stratum"] *)
    n_label : string;
    n_rows_in : int;  (** -1 when unknown *)
    n_rows_out : int;  (** -1 when unknown *)
    n_time_ns : int;
    n_alloc_bytes : float;
    n_path : string;
        (** ["columnar"] | ["row"] | ["fused"] | ["blocking"] | [""] *)
    n_detail : string;
  }

  type t = {
    p_session : string;
        (** the ambient labels at commit ([""] when none) *)
    p_uid : int;  (** 0 when no sheet is involved *)
    p_kind : string;  (** ["materialize"] | ["plan"] *)
    p_rows_out : int;  (** -1 when the region failed *)
    p_total_ns : int;
    p_alloc_bytes : float;
    p_cache : string;
        (** ["exact"] | ["subsumed"] | ["miss"] | ["seed"] | [""] *)
    p_strategy : string;
        (** ["full-replay"] | ["incremental"] | [""] *)
    p_domains : int;
    p_morsels : int;  (** [par.morsels] delta over the region *)
    p_par_scans : int;  (** [par.scans] delta over the region *)
    p_sel_rows_in : int;
        (** [columnar.sel_rows_in] delta over the region *)
    p_sel_rows_out : int;
    p_compiled : string list;
        (** predicates that ran as compiled selection vectors *)
    p_fallbacks : (string * string) list;
        (** (predicate, reason) pairs that fell back to the row path *)
    p_nodes : node list;  (** execution order *)
  }

  val enter : kind:string -> uid:int -> unit
  (** Open a profiling region. A re-entry for a uid that already has
      an open region (e.g. [Materialize.full] under a [full_cached]
      miss) nests: its notes flow to the enclosing region and its
      commit records nothing, so one query yields one record. *)

  val commit : rows_out:int -> unit
  (** Close the innermost region; a real (non-nested) region pushes
      its record into the ring. Callers pass [-1] on the exception
      path. *)

  val note_cache : string -> unit
  (** Record the cache outcome on the nearest open region (no-op
      without one — every [note_*] is). *)

  val note_strategy : string -> unit
  val note_compiled : string -> unit
  val note_fallback : pred:string -> reason:string -> unit

  val note_node :
    ?rows_in:int ->
    ?rows_out:int ->
    ?path:string ->
    ?detail:string ->
    kind:string ->
    label:string ->
    time_ns:int ->
    alloc_bytes:float ->
    unit ->
    unit

  val in_region : unit -> bool
  val open_regions : unit -> int
  (** Regions entered but not yet committed — 0 after any balanced
      workload (the doctor gate fails otherwise). *)

  val reset_stack_for_tests : unit -> unit

  val enabled : unit -> bool
  val set_enabled : bool -> unit
  (** Switch collection off entirely ([enter] pushes an inert slot).
      Default on; the overhead bench measures the difference. *)

  val default_cap : int
  (** 64 — the fallback when [SHEETSCOPE_PROFILE_CAP] is unset or
      invalid. *)

  val set_capacity : int -> unit
  (** Ring capacity (clamped to >= 1). *)

  val records : unit -> t list
  (** Ring contents, oldest first. *)

  val last : unit -> t option
  val find : uid:int -> t option
  (** The most recent record for a sheet uid. *)

  val length : unit -> int
  val dropped : unit -> int
  (** Records evicted since {!clear}. *)

  val clear : unit -> unit

  val record_to_json : t -> Obs_json.t
  val record_of_json : Obs_json.t -> (t, string) result
  (** Total: malformed input answers [Error], never an exception;
      round-trips {!record_to_json} exactly (fuzz-tested). *)

  val to_json : unit -> Obs_json.t
  (** ["sheetscope-profile/v1"]: capacity, dropped count and the
      record list — also embedded in the Chrome-trace [otherData]. *)

  val of_json : Obs_json.t -> (t list, string) result

  val render_record : t -> string
  val render : ?limit:int -> unit -> string
  (** Human-readable dump (most recent [limit] records when given). *)
end

val reload_env_config : unit -> unit
(** Re-read [SHEETSCOPE_SLOW_MS] and [SHEETSCOPE_PROFILE_CAP] (run
    once at module init). Test hook. *)

(** {1 SLOs}

    Latency and error-rate targets declared in one place, evaluated
    against the live registry. A latency target checks a percentile
    of a histogram family — the base series {e and} every labeled
    (per-session / per-task) series it has grown; a rate target checks
    a counter ratio. Series with no data pass vacuously but are
    reported as "no data". Surfaced as `slo` in the REPL, `\slo` in
    sheetsql, the TUI status segment, {!metrics_report}, and trace
    export. *)

module Slo : sig
  type def =
    | Latency of {
        slo_name : string;
        hist : string;  (** histogram family base name *)
        phi : float;  (** e.g. 0.99 *)
        under_ms : float;
      }
    | Error_rate of {
        slo_name : string;
        errors : string;  (** numerator counter *)
        total : string;  (** denominator counter *)
        under : float;  (** fraction, e.g. 0.01 = 1 % *)
      }

  val def_name : def -> string

  val defaults : def list
  (** The shipped targets: [engine.apply] p99 < 50 ms,
      [materialize.full] p99 < 200 ms, [sql.run] p99 < 100 ms, and
      engine error-rate < 1 %. *)

  val declare : def -> unit
  (** Append a target to the declared set. *)

  val definitions : unit -> def list

  val reset_declarations : unit -> unit
  (** Back to {!defaults}. *)

  type verdict = {
    v_slo : string;
    v_series : string;
    v_observed : float;  (** ms for latency, fraction for error rate *)
    v_limit : float;
    v_count : int;
        (** samples (latency) / denominator (rate); 0 = no data *)
    v_ok : bool;
  }

  val evaluate : unit -> verdict list
  (** One verdict per (target, series) pair, in declaration order,
      labeled series sorted by name within a target. *)

  val ok : unit -> bool
  val summary : unit -> string
  (** e.g. ["slo 4/4 ok"] or ["slo 1/6 FAILING"] — the TUI status
      segment. *)

  val render : unit -> string
  (** The human-readable report table. *)

  val to_json : unit -> Obs_json.t
  (** ["sheetscope-slo/v1"]. *)
end

(** {1 Chrome trace export} *)

val to_chrome_trace : event list -> Obs_json.t
(** [trace_event]-format JSON ("ph": "X" complete events, microsecond
    timestamps) with the current metrics, histogram, SLO and
    ["sheetscope-profile/v1"] snapshots under [otherData]. *)

val chrome_trace_string : unit -> string
(** {!to_chrome_trace} of the current [Memory] ring, pretty-printed. *)

val save_chrome_trace : path:string -> unit
(** Write {!chrome_trace_string} to a file ([--trace out.json] in
    [experiments] and [bench]). *)

val metrics_report : unit -> string
(** The full observability snapshot as one human-readable block:
    counters/gauges (GC included), histogram percentiles, the SLO
    summary, trace-ring health (dropped events, open spans, nesting)
    and flight-recorder depth — what the REPL [metrics] command
    prints. *)
