open Sheet_rel
open Sheet_core

let err reason = Error (`Not_single_block reason)

(* Substitute computed-column references by their definitions:
   formula columns inline as their expression, aggregate columns as an
   [Agg] node. One pass, applied to fixpoint over the definition list
   (definitions may reference earlier computed columns). *)
let rec resolve_expr computed (e : Expr.t) : (Expr.t, string) result =
  let resolve = resolve_expr computed in
  let map2 ctor a b =
    match (resolve a, resolve b) with
    | Ok a, Ok b -> Ok (ctor a b)
    | (Error _ as x), _ | _, (Error _ as x) -> x
  in
  match e with
  | Expr.Const _ -> Ok e
  | Expr.Col c -> (
      match
        List.find_opt (fun x -> x.Computed.name = c) computed
      with
      | None -> Ok e
      | Some def -> (
          match def.Computed.spec with
          | Computed.Formula body -> resolve body
          | Computed.Aggregate { fn; arg; _ } -> (
              match arg with
              | None -> Ok (Expr.Agg (fn, None))
              | Some a -> (
                  match resolve a with
                  | Ok a ->
                      if Expr.has_agg a then
                        Error
                          (Printf.sprintf
                             "aggregate %s is nested over another \
                              aggregate"
                             c)
                      else Ok (Expr.Agg (fn, Some a))
                  | Error _ as x -> x))))
  | Expr.Neg a -> Result.map (fun a -> Expr.Neg a) (resolve a)
  | Expr.Not a -> Result.map (fun a -> Expr.Not a) (resolve a)
  | Expr.Is_null a -> Result.map (fun a -> Expr.Is_null a) (resolve a)
  | Expr.Like (a, p) -> Result.map (fun a -> Expr.Like (a, p)) (resolve a)
  | Expr.In_list (a, vs) ->
      Result.map (fun a -> Expr.In_list (a, vs)) (resolve a)
  | Expr.Fn (g, a) -> Result.map (fun a -> Expr.Fn (g, a)) (resolve a)
  | Expr.Arith (op, a, b) -> map2 (fun a b -> Expr.Arith (op, a, b)) a b
  | Expr.Concat (a, b) -> map2 (fun a b -> Expr.Concat (a, b)) a b
  | Expr.Cmp (op, a, b) -> map2 (fun a b -> Expr.Cmp (op, a, b)) a b
  | Expr.And (a, b) -> map2 (fun a b -> Expr.And (a, b)) a b
  | Expr.Or (a, b) -> map2 (fun a b -> Expr.Or (a, b)) a b
  | Expr.Between (a, b, c) -> (
      match (resolve a, resolve b, resolve c) with
      | Ok a, Ok b, Ok c -> Ok (Expr.Between (a, b, c))
      | (Error _ as x), _, _ | _, (Error _ as x), _ | _, _, (Error _ as x)
        ->
          x)
  | Expr.Case (branches, default) -> (
      let resolved =
        List.map
          (fun (c, v) -> (resolve c, resolve v))
          branches
      in
      let bad =
        List.find_map
          (fun (c, v) ->
            match (c, v) with
            | Error (m : string), _ | _, Error m -> Some m
            | _ -> None)
          resolved
      in
      match bad with
      | Some m -> Error m
      | None -> (
          let branches =
            List.map
              (fun (c, v) -> (Result.get_ok c, Result.get_ok v))
              resolved
          in
          match default with
          | None -> Ok (Expr.Case (branches, None))
          | Some d ->
              Result.map
                (fun d -> Expr.Case (branches, Some d))
                (resolve d)))
  | Expr.Agg (fn, arg) -> (
      match arg with
      | None -> Ok e
      | Some a ->
          Result.map (fun a -> Expr.Agg (fn, Some a)) (resolve a))

let c_inverse_translations =
  Sheet_obs.Obs.Metrics.counter Sheet_obs.Obs.k_sql_inverse_translations

let compile ~table (sheet : Spreadsheet.t) =
  Sheet_obs.Obs.Metrics.incr c_inverse_translations;
  let state = sheet.Spreadsheet.state in
  let computed = state.Query_state.computed in
  let grouping = Spreadsheet.grouping sheet in
  let group_by = Grouping.finest_basis grouping in
  let grouped =
    group_by <> []
    || List.exists Computed.is_aggregate computed
  in
  (* aggregates must sit at the finest level (SQL's only level) *)
  let bad_level =
    List.find_opt
      (fun c ->
        match c.Computed.spec with
        | Computed.Aggregate { level; _ } ->
            level <> Grouping.num_levels grouping
        | Computed.Formula _ -> false)
      computed
  in
  match bad_level with
  | Some c ->
      err
        (Printf.sprintf
           "aggregate %s is computed at an intermediate group level; \
            single-block SQL aggregates only at the finest level"
           c.Computed.name)
  | None -> (
      (* classify selections by stratum *)
      let rec bare_columns (e : Expr.t) =
        match e with
        | Expr.Agg _ | Expr.Const _ -> []
        | Expr.Col c -> [ c ]
        | Expr.Neg a | Expr.Not a | Expr.Is_null a | Expr.Like (a, _)
        | Expr.In_list (a, _) | Expr.Fn (_, a) ->
            bare_columns a
        | Expr.Arith (_, a, b) | Expr.Concat (a, b) | Expr.Cmp (_, a, b)
        | Expr.And (a, b) | Expr.Or (a, b) ->
            bare_columns a @ bare_columns b
        | Expr.Between (a, b, c) ->
            bare_columns a @ bare_columns b @ bare_columns c
        | Expr.Case (branches, default) ->
            List.concat_map
              (fun (c, v) -> bare_columns c @ bare_columns v)
              branches
            @ (match default with Some d -> bare_columns d | None -> [])
      in
      let where = ref [] and having = ref [] in
      let resolve_error = ref None in
      List.iter
        (fun (s : Query_state.selection) ->
          match resolve_expr computed s.Query_state.pred with
          | Error m -> resolve_error := Some m
          | Ok pred ->
              if Expr.has_agg pred then
                (* a HAVING predicate may compare aggregates with
                   grouping columns only; a bare non-grouped column
                   here is the paper's introduction example — it needs
                   a nested query and a self-join in SQL *)
                match
                  List.find_opt
                    (fun c -> not (List.mem c group_by))
                    (bare_columns pred)
                with
                | Some c ->
                    resolve_error :=
                      Some
                        (Printf.sprintf
                           "selection %s compares row column %s \
                            against an aggregate; in SQL this needs a \
                            nested query, not a single block"
                           (Expr.to_string s.Query_state.pred)
                           c)
                | None -> having := pred :: !having
              else where := pred :: !where)
        state.Query_state.selections;
      match !resolve_error with
      | Some m -> err m
      | None -> (
          let conj = function
            | [] -> None
            | e :: rest ->
                Some (List.fold_left (fun acc x -> Expr.And (acc, x)) e rest)
          in
          (* output: visible columns; in a grouped query every visible
             base column must be part of the grouping basis *)
          let visible = Spreadsheet.visible_columns sheet in
          let is_computed c =
            List.exists (fun x -> x.Computed.name = c) computed
          in
          let bad_visible =
            if not grouped then None
            else
              List.find_opt
                (fun c -> (not (is_computed c)) && not (List.mem c group_by))
                visible
          in
          match bad_visible with
          | Some c ->
              err
                (Printf.sprintf
                   "column %s is neither grouped nor aggregated; the \
                    sheet shows it per row, SQL would collapse it \
                    (project it out first)"
                   c)
          | None -> (
              let select_items = ref [] in
              let select_error = ref None in
              List.iter
                (fun c ->
                  match resolve_expr computed (Expr.Col c) with
                  | Error m -> select_error := Some m
                  | Ok expr ->
                      select_items :=
                        { Sql_ast.expr;
                          alias =
                            (match expr with
                            | Expr.Col name when name = c -> None
                            | _ -> Some c) }
                        :: !select_items)
                visible;
              match !select_error with
              | Some m -> err m
              | None ->
                  let order_by =
                    List.filter_map
                      (fun (attr, dir) ->
                        let dir =
                          match dir with
                          | Grouping.Asc -> `Asc
                          | Grouping.Desc -> `Desc
                        in
                        match resolve_expr computed (Expr.Col attr) with
                        | Ok expr when List.mem attr visible ->
                            Some { Sql_ast.expr; dir }
                        | _ -> None)
                      (Grouping.sort_keys grouping)
                  in
                  Ok
                    { Sql_ast.distinct =
                        state.Query_state.dedup && not grouped;
                      select = List.rev !select_items;
                      from = [ { Sql_ast.rel = table; alias = None } ];
                      where = conj (List.rev !where);
                      group_by = (if grouped then group_by else []);
                      having = conj (List.rev !having);
                      order_by })))

let to_string ~table sheet =
  match compile ~table sheet with
  | Ok q -> Ok (Sql_ast.to_string q)
  | Error (`Not_single_block reason) -> Error reason
