open Sheet_rel

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Comparison of sort-key vectors with per-key direction. *)
let compare_keys dirs a b =
  let rec go i =
    if i >= Array.length a then 0
    else
      let c = Value.compare a.(i) b.(i) in
      let c = match List.nth dirs i with `Asc -> c | `Desc -> -c in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let eval_plain schema row e =
  Expr_eval.eval
    ~lookup:(fun name -> Row.get row (Schema.index_exn schema name))
    e

let eval_with_group schema group_rows row e =
  let agg fn arg =
    let values =
      match (fn, arg) with
      | Expr.Count_star, _ -> List.map (fun _ -> Value.Null) group_rows
      | _, Some a -> List.map (fun r -> eval_plain schema r a) group_rows
      | _, None -> failwith "aggregate without argument"
    in
    Expr_eval.apply_agg fn values
  in
  Expr_eval.eval
    ~lookup:(fun name -> Row.get row (Schema.index_exn schema name))
    ~agg e

let c_executions =
  Sheet_obs.Obs.Metrics.counter Sheet_obs.Obs.k_sql_executions

let h_run = Sheet_obs.Obs.Histogram.histogram Sheet_obs.Obs.h_sql_run

let run catalog (q : Sql_ast.query) =
  Sheet_obs.Obs.Metrics.incr c_executions;
  Sheet_obs.Obs.with_span ~kind:"sql" "sql.run" @@ fun () ->
  let t0 = Sheet_obs.Obs.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Sheet_obs.Obs.Histogram.record h_run (Sheet_obs.Obs.now_ns () - t0))
  @@ fun () ->
  let* resolved = Sql_analyzer.analyze catalog q in
  let q = resolved.Sql_analyzer.query in
  (* FROM: product of the named relations (renaming handled by
     Rel_algebra.product, mirroring the analyzer). *)
  let* source =
    List.fold_left
      (fun acc (item : Sql_ast.from_item) ->
        let* acc = acc in
        let rel = Catalog.find_exn catalog item.Sql_ast.rel in
        match acc with
        | None -> Ok (Some rel)
        | Some left -> Ok (Some (Rel_algebra.product left rel)))
      (Ok None) q.Sql_ast.from
  in
  let* source =
    match source with None -> errf "empty FROM" | Some s -> Ok s
  in
  let schema = Relation.schema source in
  assert (Schema.equal schema resolved.Sql_analyzer.source_schema);
  (* WHERE *)
  let rows =
    match q.Sql_ast.where with
    | None -> Relation.rows source
    | Some pred ->
        List.filter
          (fun row ->
            Expr_eval.eval_pred
              ~lookup:(fun name -> Row.get row (Schema.index_exn schema name))
              pred)
          (Relation.rows source)
  in
  let out_schema =
    Schema.of_list resolved.Sql_analyzer.output
  in
  let select_exprs =
    List.map (fun (i : Sql_ast.select_item) -> i.Sql_ast.expr) q.Sql_ast.select
  in
  let order_dirs = List.map (fun o -> o.Sql_ast.dir) q.Sql_ast.order_by in
  let order_exprs = List.map (fun o -> o.Sql_ast.expr) q.Sql_ast.order_by in
  (* Produce (output row, sort key) pairs. *)
  let pairs =
    if not resolved.Sql_analyzer.grouped then
      List.map
        (fun row ->
          let out =
            Array.of_list (List.map (eval_plain schema row) select_exprs)
          in
          let key =
            Array.of_list (List.map (eval_plain schema row) order_exprs)
          in
          (out, key))
        rows
    else begin
      let positions =
        List.map (Schema.index_exn schema) q.Sql_ast.group_by
      in
      let groups =
        if q.Sql_ast.group_by = [] then
          (* aggregates without GROUP BY: one group over everything,
             even when empty *)
          [ (Row.of_list [], rows) ]
        else
          let tbl = Hashtbl.create 64 in
          let order = ref [] in
          List.iter
            (fun row ->
              let key = Row.project row positions in
              let h = Row.hash key in
              let bucket =
                Hashtbl.find_opt tbl h |> Option.value ~default:[]
              in
              match
                List.find_opt (fun (k, _) -> Row.equal k key) bucket
              with
              | Some (_, cell) -> cell := row :: !cell
              | None ->
                  let cell = ref [ row ] in
                  Hashtbl.replace tbl h ((key, cell) :: bucket);
                  order := (key, cell) :: !order)
            rows;
          List.rev_map (fun (k, cell) -> (k, List.rev !cell)) !order
      in
      List.filter_map
        (fun (_, group_rows) ->
          let repr =
            match group_rows with
            | r :: _ -> r
            | [] -> Row.of_list (List.map (fun _ -> Value.Null)
                                   (Schema.names schema))
          in
          let keep =
            match q.Sql_ast.having with
            | None -> true
            | Some pred -> (
                match eval_with_group schema group_rows repr pred with
                | Value.Bool b -> b
                | Value.Null -> false
                | _ -> false)
          in
          if not keep then None
          else
            let out =
              Array.of_list
                (List.map (eval_with_group schema group_rows repr)
                   select_exprs)
            in
            let key =
              Array.of_list
                (List.map (eval_with_group schema group_rows repr)
                   order_exprs)
            in
            Some (out, key))
        groups
    end
  in
  (* DISTINCT (on output rows), then ORDER BY. *)
  let pairs =
    if not q.Sql_ast.distinct then pairs
    else begin
      let seen = Hashtbl.create 64 in
      List.filter
        (fun (out, _) ->
          let h = Row.hash out in
          let bucket = Hashtbl.find_opt seen h |> Option.value ~default:[] in
          if List.exists (fun x -> Row.equal x out) bucket then false
          else begin
            Hashtbl.replace seen h (out :: bucket);
            true
          end)
        pairs
    end
  in
  let pairs =
    if order_exprs = [] then pairs
    else
      List.stable_sort
        (fun (_, ka) (_, kb) -> compare_keys order_dirs ka kb)
        pairs
  in
  Ok (Relation.unsafe_make out_schema (List.map fst pairs))

let run_string catalog text =
  let* q = Sql_parser.parse text in
  run catalog q

let run_exn catalog text =
  match run_string catalog text with
  | Ok rel -> rel
  | Error msg -> invalid_arg ("Sql_executor.run_exn: " ^ msg)
