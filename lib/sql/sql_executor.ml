open Sheet_rel

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Comparison of sort-key vectors with per-key direction. *)
let compare_keys dirs a b =
  let rec go i =
    if i >= Array.length a then 0
    else
      let c = Value.compare a.(i) b.(i) in
      let c = match List.nth dirs i with `Asc -> c | `Desc -> -c in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let eval_plain index row e =
  Expr_eval.eval ~lookup:(fun name -> Row.get row (index name)) e

let eval_with_group index group_rows row e =
  let agg fn arg =
    let values =
      match (fn, arg) with
      | Expr.Count_star, _ -> List.map (fun _ -> Value.Null) group_rows
      | _, Some a -> List.map (fun r -> eval_plain index r a) group_rows
      | _, None -> failwith "aggregate without argument"
    in
    Expr_eval.apply_agg fn values
  in
  Expr_eval.eval ~lookup:(fun name -> Row.get row (index name)) ~agg e

let c_executions =
  Sheet_obs.Obs.Metrics.counter Sheet_obs.Obs.k_sql_executions

let h_run = Sheet_obs.Obs.Histogram.histogram Sheet_obs.Obs.h_sql_run

let run catalog (q : Sql_ast.query) =
  Sheet_obs.Obs.Metrics.incr c_executions;
  Sheet_obs.Obs.with_span ~kind:"sql" "sql.run" @@ fun () ->
  let t0 = Sheet_obs.Obs.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Sheet_obs.Obs.now_ns () - t0 in
      Sheet_obs.Obs.Histogram.record h_run dt;
      let labels = Sheet_obs.Obs.ambient_labels () in
      if not (Sheet_obs.Obs.Labels.is_empty labels) then
        Sheet_obs.Obs.Histogram.record
          (Sheet_obs.Obs.Histogram.histogram_labeled Sheet_obs.Obs.h_sql_run
             labels)
          dt)
  @@ fun () ->
  let* resolved = Sql_analyzer.analyze catalog q in
  let q = resolved.Sql_analyzer.query in
  (* FROM: product of the named relations (renaming handled by
     Rel_algebra.product, mirroring the analyzer). *)
  let* source =
    List.fold_left
      (fun acc (item : Sql_ast.from_item) ->
        let* acc = acc in
        let rel = Catalog.find_exn catalog item.Sql_ast.rel in
        match acc with
        | None -> Ok (Some rel)
        | Some left -> Ok (Some (Rel_algebra.product left rel)))
      (Ok None) q.Sql_ast.from
  in
  let* source =
    match source with None -> errf "empty FROM" | Some s -> Ok s
  in
  let schema = Relation.schema source in
  assert (Schema.equal schema resolved.Sql_analyzer.source_schema);
  let index = Schema.compile_index schema in
  (* WHERE *)
  let rows =
    match q.Sql_ast.where with
    | None -> Relation.to_array source
    | Some pred ->
        Vec.filter_array
          (fun row ->
            Expr_eval.eval_pred
              ~lookup:(fun name -> Row.get row (index name))
              pred)
          (Relation.to_array source)
  in
  let out_schema =
    Schema.of_list resolved.Sql_analyzer.output
  in
  let select_exprs =
    List.map (fun (i : Sql_ast.select_item) -> i.Sql_ast.expr) q.Sql_ast.select
  in
  let order_dirs = List.map (fun o -> o.Sql_ast.dir) q.Sql_ast.order_by in
  let order_exprs = List.map (fun o -> o.Sql_ast.expr) q.Sql_ast.order_by in
  (* Produce (output row, sort key) pairs. *)
  let pairs =
    if not resolved.Sql_analyzer.grouped then
      Array.map
        (fun row ->
          let out =
            Array.of_list (List.map (eval_plain index row) select_exprs)
          in
          let key =
            Array.of_list (List.map (eval_plain index row) order_exprs)
          in
          (out, key))
        rows
    else begin
      let positions =
        Array.of_list (List.map (Schema.index_exn schema) q.Sql_ast.group_by)
      in
      let groups =
        if q.Sql_ast.group_by = [] then
          (* aggregates without GROUP BY: one group over everything,
             even when empty *)
          [ (Row.of_list [], Array.to_list rows) ]
        else begin
          let tbl = Row.Tbl.create (max 16 (Array.length rows)) in
          let order = Vec.create () in
          Array.iter
            (fun row ->
              let key = Row.project_arr row positions in
              match Row.Tbl.find_opt tbl key with
              | Some cell -> cell := row :: !cell
              | None ->
                  let cell = ref [ row ] in
                  Row.Tbl.add tbl key cell;
                  Vec.push order (key, cell))
            rows;
          Array.to_list
            (Array.map
               (fun (k, cell) -> (k, List.rev !cell))
               (Vec.to_array order))
        end
      in
      let out = Vec.create () in
      List.iter
        (fun (_, group_rows) ->
          let repr =
            match group_rows with
            | r :: _ -> r
            | [] -> Row.of_list (List.map (fun _ -> Value.Null)
                                   (Schema.names schema))
          in
          let keep =
            match q.Sql_ast.having with
            | None -> true
            | Some pred -> (
                match eval_with_group index group_rows repr pred with
                | Value.Bool b -> b
                | Value.Null -> false
                | _ -> false)
          in
          if keep then
            let o =
              Array.of_list
                (List.map (eval_with_group index group_rows repr)
                   select_exprs)
            in
            let key =
              Array.of_list
                (List.map (eval_with_group index group_rows repr)
                   order_exprs)
            in
            Vec.push out (o, key))
        groups;
      Vec.to_array out
    end
  in
  (* DISTINCT (on output rows), then ORDER BY. *)
  let pairs =
    if not q.Sql_ast.distinct then pairs
    else begin
      let seen = Row.Tbl.create (max 16 (Array.length pairs)) in
      Vec.filter_array
        (fun (out, _) ->
          if Row.Tbl.mem seen out then false
          else begin
            Row.Tbl.add seen out ();
            true
          end)
        pairs
    end
  in
  let pairs =
    if order_exprs = [] then pairs
    else
      Vec.stable_sorted
        (fun (_, ka) (_, kb) -> compare_keys order_dirs ka kb)
        pairs
  in
  Ok (Relation.unsafe_of_array out_schema (Array.map fst pairs))

let run_string catalog text =
  let* q = Sql_parser.parse text in
  run catalog q

let run_exn catalog text =
  match run_string catalog text with
  | Ok rel -> rel
  | Error msg -> invalid_arg ("Sql_executor.run_exn: " ^ msg)
