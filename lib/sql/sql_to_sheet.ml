open Sheet_rel
open Sheet_core

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

type plan = {
  first_relation : string;
  ops : Op.t list;
  output : string list;
}

(* Internal: plan plus what `execute` needs to present the result. *)
type full_plan = {
  plan : plan;
  sql_output : (string * Value.vtype) list;
  collapse : bool;  (** grouped or DISTINCT: collapse per-group rows *)
}

(* Rewrite aggregate calls to references to their aggregation columns. *)
let rec rewrite_aggs mapping (e : Expr.t) : Expr.t =
  let rw = rewrite_aggs mapping in
  match e with
  | Expr.Agg (fn, arg) -> (
      match
        List.find_opt
          (fun ((f, a), _) -> f = fn && Option.equal Expr.equal a arg)
          mapping
      with
      | Some (_, col) -> Expr.Col col
      | None -> e (* unreachable: every aggregate was collected *))
  | Expr.Const _ | Expr.Col _ -> e
  | Expr.Neg a -> Expr.Neg (rw a)
  | Expr.Arith (op, a, b) -> Expr.Arith (op, rw a, rw b)
  | Expr.Concat (a, b) -> Expr.Concat (rw a, rw b)
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, rw a, rw b)
  | Expr.And (a, b) -> Expr.And (rw a, rw b)
  | Expr.Or (a, b) -> Expr.Or (rw a, rw b)
  | Expr.Not a -> Expr.Not (rw a)
  | Expr.Is_null a -> Expr.Is_null (rw a)
  | Expr.Fn (g, a) -> Expr.Fn (g, rw a)
  | Expr.Like (a, p) -> Expr.Like (rw a, p)
  | Expr.In_list (a, vs) -> Expr.In_list (rw a, vs)
  | Expr.Between (a, b, c) -> Expr.Between (rw a, rw b, rw c)
  | Expr.Case (branches, default) ->
      Expr.Case
        (List.map (fun (c, e) -> (rw c, rw e)) branches,
         Option.map rw default)

(* Collect the distinct aggregate calls of an expression. *)
let rec collect_aggs (e : Expr.t) =
  match e with
  | Expr.Agg (fn, arg) -> [ (fn, arg) ]
  | Expr.Const _ | Expr.Col _ -> []
  | Expr.Neg a | Expr.Not a | Expr.Is_null a | Expr.Like (a, _)
  | Expr.In_list (a, _) | Expr.Fn (_, a) ->
      collect_aggs a
  | Expr.Arith (_, a, b) | Expr.Concat (a, b) | Expr.Cmp (_, a, b)
  | Expr.And (a, b) | Expr.Or (a, b) ->
      collect_aggs a @ collect_aggs b
  | Expr.Between (a, b, c) ->
      collect_aggs a @ collect_aggs b @ collect_aggs c
  | Expr.Case (branches, default) ->
      List.concat_map
        (fun (c, e) -> collect_aggs c @ collect_aggs e)
        branches
      @ (match default with Some d -> collect_aggs d | None -> [])

let dedup_aggs aggs =
  List.fold_left
    (fun acc (fn, arg) ->
      if
        List.exists
          (fun (f, a) -> f = fn && Option.equal Expr.equal a arg)
          acc
      then acc
      else acc @ [ (fn, arg) ])
    [] aggs

let translate_full catalog (q : Sql_ast.query) =
  let* resolved = Sql_analyzer.analyze catalog q in
  let q = resolved.Sql_analyzer.query in
  let grouped = resolved.Sql_analyzer.grouped in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let fresh_counter = ref 0 in
  let fresh base =
    incr fresh_counter;
    Printf.sprintf "%s_%d" base !fresh_counter
  in
  (* Step 1: product of the FROM relations, one at a time. *)
  let* first_relation =
    match q.Sql_ast.from with
    | [] -> errf "empty FROM"
    | first :: rest ->
        List.iter (fun (f : Sql_ast.from_item) ->
            emit (Op.Product f.Sql_ast.rel)) rest;
        Ok first.Sql_ast.rel
  in
  (* Step 2: WHERE as a selection (join conditions included — the
     product is already formed, so distributing them is unnecessary). *)
  Option.iter (fun pred -> emit (Op.Select pred)) q.Sql_ast.where;
  (* Step 3: one grouping level per GROUP BY item, left to right. *)
  List.iter
    (fun col -> emit (Op.Group { basis = [ col ]; dir = Grouping.Asc }))
    q.Sql_ast.group_by;
  let finest = 1 + List.length q.Sql_ast.group_by in
  (* Step 4: aggregations (SELECT, HAVING and ORDER BY may all carry
     them), each as an aggregation column at the finest level.
     Aggregates over expressions need the expression as a formula
     column first. *)
  let all_aggs =
    dedup_aggs
      (List.concat_map
         (fun (i : Sql_ast.select_item) -> collect_aggs i.Sql_ast.expr)
         q.Sql_ast.select
      @ (match q.Sql_ast.having with
        | Some e -> collect_aggs e
        | None -> [])
      @ List.concat_map
          (fun (o : Sql_ast.order_item) -> collect_aggs o.Sql_ast.expr)
          q.Sql_ast.order_by)
  in
  let agg_mapping =
    List.map
      (fun (fn, arg) ->
        let col =
          match arg with
          | None -> None
          | Some (Expr.Col c) -> Some c
          | Some e ->
              let fname = fresh "AggArg" in
              emit (Op.Formula { name = Some fname; expr = e });
              Some fname
        in
        let as_name =
          fresh (Engine.aggregate_default_name fn col)
        in
        emit (Op.Aggregate { fn; col; level = finest; as_name = Some as_name });
        ((fn, arg), as_name))
      all_aggs
  in
  (* Step 5: HAVING as a selection on the aggregation columns. *)
  Option.iter
    (fun e -> emit (Op.Select (rewrite_aggs agg_mapping e)))
    q.Sql_ast.having;
  (* Output expressions: plain columns pass through; aggregate calls
     use their aggregation column; anything else becomes a formula. *)
  let output_col_of_expr e =
    match rewrite_aggs agg_mapping e with
    | Expr.Col c -> c
    | rewritten ->
        let fname = fresh "Out" in
        emit (Op.Formula { name = Some fname; expr = rewritten });
        fname
  in
  let output =
    List.map
      (fun (i : Sql_ast.select_item) -> output_col_of_expr i.Sql_ast.expr)
      q.Sql_ast.select
  in
  (* Step 6: ORDER BY. Grouping columns order their group level;
     anything else orders inside the finest groups. *)
  List.iteri
    (fun _ (o : Sql_ast.order_item) ->
      let dir =
        match o.Sql_ast.dir with `Asc -> Grouping.Asc | `Desc -> Grouping.Desc
      in
      let col = output_col_of_expr o.Sql_ast.expr in
      let is_agg_col =
        List.exists (fun (_, name) -> name = col) agg_mapping
      in
      if is_agg_col && finest >= 2 then
        (* extension: SQL's ORDER BY <aggregate> orders the result
           rows, i.e. the groups — expressible with the group
           order-by-value override, which restores even presentation
           order fidelity *)
        emit (Op.Order_groups { attr = col; dir })
      else
        let level =
          let rec position i = function
            | [] -> finest
            | g :: rest -> if g = col then i else position (i + 1) rest
          in
          position 1 q.Sql_ast.group_by
        in
        emit (Op.Order { attr = col; dir; level }))
    q.Sql_ast.order_by;
  (* Step 7: project out every column that is neither an output column
     nor (to keep groups distinguishable for presentation) a grouping
     column. The column set at this point is the base product schema
     plus all formula/aggregate columns created above. *)
  let created_cols =
    List.filter_map
      (fun op ->
        match op with
        | Op.Formula { name = Some n; _ } -> Some n
        | Op.Aggregate { as_name = Some n; _ } -> Some n
        | _ -> None)
      (List.rev !ops)
  in
  let all_cols =
    Schema.names resolved.Sql_analyzer.source_schema @ created_cols
  in
  let keep = output @ q.Sql_ast.group_by in
  List.iter
    (fun col -> if not (List.mem col keep) then emit (Op.Project col))
    all_cols;
  Ok
    { plan = { first_relation; ops = List.rev !ops; output };
      sql_output = resolved.Sql_analyzer.output;
      collapse = grouped || q.Sql_ast.distinct }

let c_translations =
  Sheet_obs.Obs.Metrics.counter Sheet_obs.Obs.k_sql_translations

let translate catalog q =
  Sheet_obs.Obs.Metrics.incr c_translations;
  let* fp = translate_full catalog q in
  Sheet_obs.Obs.Flightrec.record ~kind:"sql-translation"
    (Printf.sprintf "%s, %d ops" fp.plan.first_relation
       (List.length fp.plan.ops));
  Ok fp.plan

let fresh_session catalog plan =
  match Catalog.find catalog plan.first_relation with
  | None -> errf "unknown relation %S" plan.first_relation
  | Some rel ->
      let session = Session.create ~name:plan.first_relation rel in
      (* make every catalog relation available as a stored sheet *)
      List.iter
        (fun name ->
          Store.save (Session.store session) ~name
            (Spreadsheet.of_relation ~name (Catalog.find_exn catalog name)))
        (Catalog.names catalog);
      Ok session

let session_of_plan catalog plan =
  let* session = fresh_session catalog plan in
  List.fold_left
    (fun acc op ->
      let* session = acc in
      match Session.apply session op with
      | Ok session -> Ok session
      | Error e ->
          errf "applying %s: %s" (Op.describe op) (Errors.to_string e))
    (Ok session) plan.ops

let execute catalog q =
  let* fp = translate_full catalog q in
  let* session = session_of_plan catalog fp.plan in
  let rel = Materialize.visible (Session.current session) in
  (* Presentation collapse: grouped sheets repeat group values on every
     row of the group; displaying one row per group is the spreadsheet
     equivalent of SQL's one-tuple-per-group output. The surviving
     grouping columns keep distinct groups apart even when they are
     not part of the SQL output. *)
  let rel = if fp.collapse then Rel_algebra.distinct rel else rel in
  (* Project to the SQL output columns (positionally) and rename to
     the SQL output names. Duplicates in the output list are allowed,
     so build the row projection manually. *)
  let schema = Relation.schema rel in
  let positions =
    List.map (fun name -> Schema.index_exn schema name) fp.plan.output
  in
  let out_schema = Schema.of_list fp.sql_output in
  let rows =
    List.map (fun row -> Row.project row positions) (Relation.rows rel)
  in
  Ok (Relation.unsafe_make out_schema rows)
