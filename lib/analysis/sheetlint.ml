open Sheet_core

(* Linting must never take a session down: any escaped exception
   becomes a diagnostic about the analyzer itself. *)
let guard f =
  try f ()
  with exn ->
    [ Diagnostic.error ~code:"analyzer-failure" ~loc:Diagnostic.Query
        (Printf.sprintf "the analyzer itself failed: %s"
           (Printexc.to_string exn)) ]

let expr ?type_of e =
  guard (fun () -> Expr_lint.lint_pred ?type_of ~loc:Diagnostic.Query e)

let sheet s = guard (fun () -> State_lint.lint s)
let session s = guard (fun () -> State_lint.lint (Session.current s))
let sql catalog q = guard (fun () -> Sql_lint.lint_query catalog q)
let sql_string catalog text =
  guard (fun () -> Sql_lint.lint_string catalog text)

let script start text =
  match Script.run_silent start text with
  | Error msg -> Error msg
  | Ok session' -> Ok (guard (fun () -> State_lint.lint (Session.current session')))

let render = Diagnostic.render
let has_errors = Diagnostic.has_errors
let has_warnings = Diagnostic.has_warnings
