(** Lints on core single-block SQL — the [\lint] command of
    [sheetsql].

    The WHERE and HAVING predicates get the {!Expr_lint} treatment
    against the FROM-product schema (so [WHERE Price < 10 AND
    Price > 20] is an error before any data is read); GROUP BY and
    ORDER BY are checked for duplicate keys; WHERE and HAVING are
    checked for joint unsatisfiability ([conflicting-clauses]).
    The query is then translated through Theorem 1
    ({!Sheet_sql.Sql_to_sheet}) and the resulting sheet's query state
    is linted with {!State_lint}, keeping only the findings a clause
    check cannot see (dead computed columns, dead order keys, ...) —
    the same analysis engine serving both front ends.

    Malformed input yields a [parse-error] / [invalid-query] error
    diagnostic rather than an exception. *)

open Sheet_sql

val lint_query : Catalog.t -> Sql_ast.query -> Diagnostic.t list
val lint_string : Catalog.t -> string -> Diagnostic.t list
