(** Analysis-facing façade over {!Sheet_core.State_subsume} — the
    cross-state subsumption check that drives the semantic
    materialization cache — re-exported here next to the other lints
    so analysis clients need not depend on the core module layout, and
    extended with diagnostic rendering. *)

include module type of Sheet_core.State_subsume

val explain : outcome -> string
(** Multi-line rendering including the solver proof. *)

val diagnose : loc:Diagnostic.location -> outcome -> Diagnostic.t option
(** [Some hint] for [Equal]/[Subsumed] (codes [state-equal] /
    [state-subsumed]); [None] for [Incomparable]. *)
