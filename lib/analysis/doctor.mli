(** Sheetdoctor — anomaly detection over the Sheetscope profile ring.

    Where {!Sheetlint} analyzes the query {e before} it runs, the
    doctor reads what actually happened: the per-query execution
    profiles ({!Sheet_obs.Obs.Profile}), the materialization cache
    statistics, the live metric registry and the SLO verdicts. Every
    detector is a heuristic — findings are {!Diagnostic.t}s, reusing
    the lint severity scale, and the pass itself never raises.

    Detectors:
    - [row-path-fallback] (warning when the region touched >= 512
      rows, hint below): a selection predicate could not compile to a
      selection vector; the message names the blocking subtree.
    - [par-underfilled] (hint): parallel scans produced fewer morsels
      than [domains * scans] — most workers idled.
    - [cache-thrash] (warning): the materialization cache evicted
      entries but never answered a subsumed hit.
    - [label-overflow] (warning): a metric family's label cap is
      exhausted and the [{__overflow__}] series is absorbing events.
    - [slo-burn] (error): a declared SLO with data is failing.
    - [sort-dominated] (hint): a sort node takes more than half of a
      region at least 1 ms long. *)

val examine : Sheet_obs.Obs.Profile.t -> Diagnostic.t list
(** Detectors that read a single profile record. *)

val run : unit -> Diagnostic.t list
(** All detectors over the whole ring and registry, sorted errors
    first. Never raises. *)

val render : unit -> string
(** {!Diagnostic.render} of {!run} — or ["no diagnostics"]. *)

val summary : unit -> string
(** One-line status chip, e.g. ["doctor: ok"] or
    ["doctor: 1 error, 2 warn"] — the TUI status bar shows this. *)
