open Sheet_rel
open Sheet_core

let referenced_columns = Query_state.referenced_columns

let and_all = function
  | [] -> Expr.Const (Value.Bool true)
  | p :: ps -> List.fold_left (fun a b -> Expr.And (a, b)) p ps

(* Selections: per-predicate lints, then cross-selection contradiction
   and subsumption. Any row of the materialization satisfies every
   selection predicate (columns are never mutated after a predicate is
   checked), so an unsatisfiable conjunction proves an empty result
   whatever the strata. *)
let selection_diags ~type_of (state : Query_state.t) =
  let sels = Array.of_list state.selections in
  let n = Array.length sels in
  let per_pred =
    Array.to_list sels
    |> List.concat_map (fun (s : Query_state.selection) ->
           Expr_lint.lint_pred ~type_of ~loc:(Diagnostic.Selection s.id) s.pred)
  in
  let sat i = Expr_domain.satisfiable ~type_of sels.(i).Query_state.pred in
  let cross = ref [] in
  let add d = cross := d :: !cross in
  let pair_conflict = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let pi = sels.(i).Query_state.pred and pj = sels.(j).Query_state.pred in
      let idi = sels.(i).Query_state.id and idj = sels.(j).Query_state.id in
      if sat i && sat j then
        if not (Expr_domain.satisfiable ~type_of (Expr.And (pi, pj))) then begin
          pair_conflict := true;
          add
            (Diagnostic.error ~code:"conflicting-selections"
               ~loc:(Diagnostic.Selection idj)
               (Printf.sprintf
                  "contradicts selection #%d (%s) — together they filter out every row"
                  idi (Expr.to_string pi)))
        end
        else begin
          let i_implies_j = Expr_domain.implies ~type_of pi pj
          and j_implies_i = Expr_domain.implies ~type_of pj pi in
          if i_implies_j && j_implies_i then
            add
              (Diagnostic.warning ~code:"duplicate-selection"
                 ~loc:(Diagnostic.Selection idj)
                 (Printf.sprintf "equivalent to selection #%d — it filters nothing further"
                    idi))
          else if i_implies_j then
            add
              (Diagnostic.warning ~code:"subsumed-selection"
                 ~loc:(Diagnostic.Selection idj)
                 (Printf.sprintf
                    "already implied by selection #%d (%s) — it filters nothing further"
                    idi (Expr.to_string pi)))
          else if j_implies_i then
            add
              (Diagnostic.warning ~code:"subsumed-selection"
                 ~loc:(Diagnostic.Selection idi)
                 (Printf.sprintf
                    "already implied by selection #%d (%s) — it filters nothing further"
                    idj (Expr.to_string pj)))
        end
    done
  done;
  (* a contradiction only visible across three or more predicates *)
  if
    n >= 3
    && (not !pair_conflict)
    && List.for_all (fun i -> sat i) (List.init n Fun.id)
    && not
         (Expr_domain.satisfiable ~type_of
            (and_all
               (List.map
                  (fun (s : Query_state.selection) -> s.pred)
                  (Array.to_list sels))))
  then
    add
      (Diagnostic.error ~code:"conflicting-selections" ~loc:Diagnostic.Query
         "the selections are jointly unsatisfiable — they filter out every row");
  per_pred @ List.rev !cross

let column_diags (sheet : Spreadsheet.t) =
  let state = sheet.Spreadsheet.state in
  let read = referenced_columns state in
  let is_read c = List.mem c read in
  let hidden = Spreadsheet.hidden_columns sheet in
  List.filter_map
    (fun c ->
      let computed = Spreadsheet.is_computed sheet c in
      if is_read c then
        let deps =
          match Query_state.column_dependents state c with
          | [] -> "the grouping/ordering"
          | ds -> String.concat "; " ds
        in
        Some
          (Diagnostic.hint ~code:"hidden-referenced" ~loc:(Diagnostic.Column c)
             (Printf.sprintf "hidden column %s is still read by: %s" c deps))
      else if computed then
        Some
          (Diagnostic.warning ~code:"dead-computed-column"
             ~loc:(Diagnostic.Column c)
             (Printf.sprintf
                "computed column %s is hidden and nothing reads it — it only costs work"
                c))
      else None)
    hidden

let grouping_diags (state : Query_state.t) =
  let g = state.grouping in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* a column appearing twice among the flat sort keys: the second
     occurrence can never break a tie *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c, _) ->
      if Hashtbl.mem seen c then
        add
          (Diagnostic.warning ~code:"duplicate-order-key"
             ~loc:Diagnostic.Ordering
             (Printf.sprintf
                "column %s appears more than once in the ordering — the later key is dead"
                c))
      else Hashtbl.add seen c ())
    (Grouping.sort_keys g);
  (* a leaf-order key constant within the finest groups orders nothing *)
  let constant_in_finest c =
    Grouping.is_group_attr g c
    || List.exists
         (fun (cc : Computed.t) ->
           cc.name = c
           &&
           match cc.spec with
           | Computed.Aggregate { level; _ } ->
               level <= Grouping.num_levels g
           | Computed.Formula _ -> false)
         state.computed
  in
  List.iter
    (fun (c, _) ->
      if constant_in_finest c then
        add
          (Diagnostic.warning ~code:"dead-order-key" ~loc:Diagnostic.Ordering
             (Printf.sprintf
                "ordering by %s has no effect — it is constant within the finest groups"
                c)))
    g.leaf_order;
  (* whole-sheet aggregates alongside grouping: legal (Definition 11
     level 1) but often the user meant the finest level *)
  if g.levels <> [] then
    List.iter
      (fun (cc : Computed.t) ->
        match cc.spec with
        | Computed.Aggregate { level = 1; _ } ->
            add
              (Diagnostic.hint ~code:"whole-sheet-aggregate"
                 ~loc:(Diagnostic.Column cc.name)
                 (Printf.sprintf
                    "aggregate %s is computed over the whole sheet, not per group"
                    cc.name))
        | _ -> ())
      state.computed;
  List.rev !diags

(* Theorem 2 replay puts a selection right after the highest-ranked
   computed column it reads: selecting on an aggregate is HAVING, and
   the aggregate is not recomputed over the filtered rows. Worth a
   note, not a warning — it is exactly what HAVING-style tasks want. *)
let precedence_diags (state : Query_state.t) =
  List.filter_map
    (fun (s : Query_state.selection) ->
      let stratum = Query_state.selection_stratum state s.pred in
      let reads_agg =
        List.exists
          (fun c ->
            match Query_state.find_computed state c with
            | Some cc -> Computed.is_aggregate cc
            | None -> false)
          (Expr.columns s.pred)
      in
      if stratum > 0 && reads_agg then
        Some
          (Diagnostic.hint ~code:"aggregate-selection"
             ~loc:(Diagnostic.Selection s.id)
             "applies after aggregation — aggregates are not recomputed over the filtered rows")
      else None)
    state.selections

let lint (sheet : Spreadsheet.t) : Diagnostic.t list =
  let state = sheet.Spreadsheet.state in
  let type_of = Schema.type_of (Spreadsheet.full_schema sheet) in
  selection_diags ~type_of state
  @ column_diags sheet
  @ grouping_diags state
  @ precedence_diags state
