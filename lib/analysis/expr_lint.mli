(** Lints on a single predicate, powered by {!Sheet_rel.Expr_domain}.

    Produced diagnostics:
    - [unknown-column] (error): references a column absent from
      [known] (when supplied);
    - [unsat-predicate] (error): provably satisfied by no row;
    - [tautology] (warning): provably satisfied by every row;
    - [duplicate-conjunct] (hint): a literally repeated conjunct;
    - [equivalent-conjunct] (hint): a conjunct provably equivalent to
      — not just implied by — an earlier one ([Price < 10000] vs
      [Price <= 9999] over an integer column), naming the witness
      column;
    - [redundant-conjunct] (hint): a conjunct implied by the others
      (e.g. [Price < 10 AND Price < 20]);
    - [contradictory-conjunct] (warning, alongside [unsat-predicate]):
      a disequality contradicting an equality on the same column
      ([x = 3 AND x <> 3]), naming the witness column. *)

open Sheet_rel

val lint_pred :
  ?type_of:(string -> Value.vtype option) ->
  ?known:string list ->
  loc:Diagnostic.location ->
  Expr.t ->
  Diagnostic.t list
(** [type_of] supplies column types for sharper verdicts; [known],
    when given, is the full list of legal column names. *)
