open Sheet_rel

let unknown_columns ~known e =
  match known with
  | None -> []
  | Some names ->
      List.filter (fun c -> not (List.mem c names)) (Expr.columns e)

(* Conjunction of the conjuncts at the selected indices. *)
let conj_where conjs keep =
  match List.filteri (fun j _ -> keep j) conjs with
  | [] -> Expr.Const (Value.Bool true)
  | c :: cs -> List.fold_left (fun a b -> Expr.And (a, b)) c cs

let lint_pred ?type_of ?known ~loc (pred : Expr.t) : Diagnostic.t list =
  let unknown = unknown_columns ~known pred in
  if unknown <> [] then
    [ Diagnostic.error ~code:"unknown-column" ~loc
        (Printf.sprintf "references unknown column%s %s"
           (if List.length unknown > 1 then "s" else "")
           (String.concat ", " unknown)) ]
  else
    match Expr_domain.check ?type_of pred with
    | `Unsat cols ->
        let detail =
          match cols with
          | [] -> ""
          | cs -> " (conflicting constraints on " ^ String.concat ", " cs ^ ")"
        in
        [ Diagnostic.error ~code:"unsat-predicate" ~loc
            (Printf.sprintf "predicate %s can never hold%s — it filters out every row"
               (Expr.to_string pred) detail) ]
    | `Maybe ->
        let diags = ref [] in
        let add d = diags := d :: !diags in
        if Expr_domain.tautology ?type_of pred then
          add
            (Diagnostic.warning ~code:"tautology" ~loc
               (Printf.sprintf "predicate %s holds on every row — the filter is a no-op"
                  (Expr.to_string pred)));
        (* conjunct-level redundancy: duplicates and implied conjuncts *)
        let conjs = Expr.conjuncts pred in
        if List.length conjs > 1 then begin
          let arr = Array.of_list conjs in
          let n = Array.length arr in
          let reported = Array.make n false in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if (not reported.(j)) && Expr.equal arr.(i) arr.(j) then begin
                reported.(j) <- true;
                add
                  (Diagnostic.hint ~code:"duplicate-conjunct" ~loc
                     (Printf.sprintf "conjunct %s is repeated"
                        (Expr.to_string arr.(j))))
              end
            done
          done;
          (* a conjunct implied by the rest adds nothing; scan from the
             right so of two equivalent conjuncts the later one is
             flagged. Already-reported duplicates are left out of the
             rest, lest they justify flagging their own twin. *)
          for i = n - 1 downto 0 do
            if
              (not reported.(i))
              && Expr_domain.implies ?type_of
                   (conj_where conjs (fun j -> j <> i && not reported.(j)))
                   arr.(i)
            then begin
              reported.(i) <- true;
              add
                (Diagnostic.hint ~code:"redundant-conjunct" ~loc
                   (Printf.sprintf "conjunct %s is implied by the rest of the predicate"
                      (Expr.to_string arr.(i))))
            end
          done
        end;
        List.rev !diags
