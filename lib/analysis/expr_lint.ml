open Sheet_rel

let unknown_columns ~known e =
  match known with
  | None -> []
  | Some names ->
      List.filter (fun c -> not (List.mem c names)) (Expr.columns e)

(* Conjunction of the conjuncts at the selected indices. *)
let conj_where conjs keep =
  match List.filteri (fun j _ -> keep j) conjs with
  | [] -> Expr.Const (Value.Bool true)
  | c :: cs -> List.fold_left (fun a b -> Expr.And (a, b)) c cs

(* [x = v] with the constant on either side. *)
let eq_atom = function
  | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Const v)
  | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Col c) ->
      Some (c, v)
  | _ -> None

(* [x <> v], spelled with [<>] or as a negated equality. *)
let ne_atom = function
  | Expr.Cmp (Expr.Ne, Expr.Col c, Expr.Const v)
  | Expr.Cmp (Expr.Ne, Expr.Const v, Expr.Col c) ->
      Some (c, v)
  | Expr.Not inner -> eq_atom inner
  | _ -> None

(* An equality and a disequality pinning the same column to the same
   value ([x = 3 AND x <> 3]) — name the witness column so the user
   sees where the contradiction pivots. *)
let contradictory_pairs conjs =
  let arr = Array.of_list conjs in
  let n = Array.length arr in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let clash a b =
        match (eq_atom a, ne_atom b) with
        | Some (c1, v1), Some (c2, v2) ->
            String.equal c1 c2 && Value.equal v1 v2
        | _ -> false
      in
      if clash arr.(i) arr.(j) || clash arr.(j) arr.(i) then
        out := (arr.(i), arr.(j)) :: !out
    done
  done;
  List.rev !out

let witness_column a b =
  let cols_b = Expr.columns b in
  match List.find_opt (fun c -> List.mem c cols_b) (Expr.columns a) with
  | Some c -> Some c
  | None -> ( match cols_b with c :: _ -> Some c | [] -> None)

let lint_pred ?type_of ?known ~loc (pred : Expr.t) : Diagnostic.t list =
  let unknown = unknown_columns ~known pred in
  if unknown <> [] then
    [ Diagnostic.error ~code:"unknown-column" ~loc
        (Printf.sprintf "references unknown column%s %s"
           (if List.length unknown > 1 then "s" else "")
           (String.concat ", " unknown)) ]
  else
    match Expr_domain.check ?type_of pred with
    | `Unsat cols ->
        let detail =
          match cols with
          | [] -> ""
          | cs -> " (conflicting constraints on " ^ String.concat ", " cs ^ ")"
        in
        Diagnostic.error ~code:"unsat-predicate" ~loc
          (Printf.sprintf
             "predicate %s can never hold%s — it filters out every row"
             (Expr.to_string pred) detail)
        :: List.map
             (fun (a, b) ->
               Diagnostic.warning ~code:"contradictory-conjunct" ~loc
                 (Printf.sprintf
                    "conjunct %s contradicts %s (both pin column %s)"
                    (Expr.to_string b) (Expr.to_string a)
                    (match witness_column a b with
                    | Some c -> c
                    | None -> "?")))
             (contradictory_pairs (Expr.conjuncts pred))
    | `Maybe ->
        let diags = ref [] in
        let add d = diags := d :: !diags in
        if Expr_domain.tautology ?type_of pred then
          add
            (Diagnostic.warning ~code:"tautology" ~loc
               (Printf.sprintf "predicate %s holds on every row — the filter is a no-op"
                  (Expr.to_string pred)));
        (* conjunct-level redundancy: duplicates and implied conjuncts *)
        let conjs = Expr.conjuncts pred in
        if List.length conjs > 1 then begin
          let arr = Array.of_list conjs in
          let n = Array.length arr in
          let reported = Array.make n false in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if (not reported.(j)) && Expr.equal arr.(i) arr.(j) then begin
                reported.(j) <- true;
                add
                  (Diagnostic.hint ~code:"duplicate-conjunct" ~loc
                     (Printf.sprintf "conjunct %s is repeated"
                        (Expr.to_string arr.(j))))
              end
            done
          done;
          (* semantically equivalent (but not literally equal)
             conjuncts, e.g. [Price < 10000] vs [Price <= 9999] over
             an integer column: the later one is flagged, with the
             column the equivalence pivots on *)
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if
                (not reported.(i))
                && (not reported.(j))
                && (not (Expr.equal arr.(i) arr.(j)))
                && Sheetsolve.equivalent ?type_of arr.(i) arr.(j)
              then begin
                reported.(j) <- true;
                add
                  (Diagnostic.hint ~code:"equivalent-conjunct" ~loc
                     (Printf.sprintf
                        "conjunct %s is equivalent to conjunct %s%s"
                        (Expr.to_string arr.(j))
                        (Expr.to_string arr.(i))
                        (match witness_column arr.(i) arr.(j) with
                        | Some c -> " (on column " ^ c ^ ")"
                        | None -> "")))
              end
            done
          done;
          (* a conjunct implied by the rest adds nothing; scan from the
             right so of two equivalent conjuncts the later one is
             flagged. Already-reported duplicates are left out of the
             rest, lest they justify flagging their own twin. *)
          for i = n - 1 downto 0 do
            if
              (not reported.(i))
              && Expr_domain.implies ?type_of
                   (conj_where conjs (fun j -> j <> i && not reported.(j)))
                   arr.(i)
            then begin
              reported.(i) <- true;
              add
                (Diagnostic.hint ~code:"redundant-conjunct" ~loc
                   (Printf.sprintf "conjunct %s is implied by the rest of the predicate"
                      (Expr.to_string arr.(i))))
            end
          done
        end;
        List.rev !diags
