include Sheet_core.State_subsume

let explain outcome =
  match outcome with
  | Sheet_core.State_subsume.Equal -> "states have equal selections"
  | Sheet_core.State_subsume.Subsumed proof ->
      "subsumed:\n" ^ Sheet_rel.Sheetsolve.explain proof
  | Sheet_core.State_subsume.Incomparable why -> "incomparable: " ^ why

let diagnose ~loc outcome =
  match outcome with
  | Sheet_core.State_subsume.Equal ->
      Some
        (Diagnostic.hint ~code:"state-equal" ~loc
           "query state is identical to a previously materialized one")
  | Sheet_core.State_subsume.Subsumed proof ->
      Some
        (Diagnostic.hint ~code:"state-subsumed" ~loc
           ("query state is answerable from a previous materialization — "
          ^ Sheet_rel.Sheetsolve.explain proof))
  | Sheet_core.State_subsume.Incomparable _ -> None
