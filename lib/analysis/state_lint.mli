(** Lints over a spreadsheet's query state.

    Beyond the per-predicate lints of {!Expr_lint} (run on every
    selection with the sheet's full schema), this pass reports:
    - [conflicting-selections] (error): two selections — or the whole
      selection set — jointly unsatisfiable. Sound across strata: a
      materialized row satisfies every selection predicate, so a
      contradictory set proves an empty result.
    - [subsumed-selection] / [duplicate-selection] (warning): a
      selection implied by (resp. equivalent to) another — it filters
      nothing further and only clutters the query state.
    - [dead-computed-column] (warning): a hidden computed column
      nothing reads — pure evaluation cost.
    - [hidden-referenced] (hint): a hidden column other operators
      still read (normal after SQL translation, notable otherwise).
    - [duplicate-order-key] / [dead-order-key] (warning): ordering
      keys that can never affect the presentation.
    - [whole-sheet-aggregate] (hint): a level-1 aggregate on a grouped
      sheet — constant everywhere, often a mistyped level.
    - [aggregate-selection] (hint): a selection applying after
      aggregation (HAVING semantics, Theorem 2's replay order). *)

open Sheet_core

val referenced_columns : Query_state.t -> string list
(** Sorted names of every column the state's selections, computed
    columns, grouping and ordering read. *)

val lint : Spreadsheet.t -> Diagnostic.t list
