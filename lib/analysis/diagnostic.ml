type severity = Error | Warning | Hint

type location =
  | Selection of int
  | Column of string
  | Grouping
  | Ordering
  | Clause of string
  | Query

type t = {
  severity : severity;
  code : string;
  location : location;
  message : string;
}

let make severity ~code ~loc message =
  { severity; code; location = loc; message }

let error ~code ~loc message = make Error ~code ~loc message
let warning ~code ~loc message = make Warning ~code ~loc message
let hint ~code ~loc message = make Hint ~code ~loc message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let location_to_string = function
  | Selection id -> Printf.sprintf "selection #%d" id
  | Column c -> Printf.sprintf "column %s" c
  | Grouping -> "grouping"
  | Ordering -> "ordering"
  | Clause c -> c
  | Query -> "query"

let to_string d =
  Printf.sprintf "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code
    (location_to_string d.location)
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

(* One diagnostic per line, fields tab-separated — greppable and
   stable for tooling. *)
let to_machine d =
  String.concat "\t"
    [ severity_to_string d.severity;
      d.code;
      location_to_string d.location;
      d.message ]

let sort ds =
  List.stable_sort
    (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
    ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let has_warnings ds = List.exists (fun d -> d.severity = Warning) ds

let render = function
  | [] -> "no diagnostics"
  | ds ->
      sort ds |> List.map to_string |> String.concat "\n"
