(** Structured findings of the static analyzer (Sheetlint).

    A diagnostic ties a severity and a stable machine-readable code to
    the operator or column it concerns. [Error] means the analysis
    {e proved} the construct can never contribute a row (the query
    result is degenerate); [Warning] flags operators that provably do
    nothing or duplicate another; [Hint] marks legitimate-but-notable
    patterns a user may want to reconsider. *)

type severity = Error | Warning | Hint

type location =
  | Selection of int  (** a selection predicate, by its stable id *)
  | Column of string
  | Grouping
  | Ordering
  | Clause of string  (** a SQL clause, e.g. ["WHERE"] *)
  | Query  (** the query as a whole *)

type t = {
  severity : severity;
  code : string;  (** stable slug, e.g. ["unsat-predicate"] *)
  location : location;
  message : string;
}

val make : severity -> code:string -> loc:location -> string -> t
val error : code:string -> loc:location -> string -> t
val warning : code:string -> loc:location -> string -> t
val hint : code:string -> loc:location -> string -> t

val severity_to_string : severity -> string
val location_to_string : location -> string

val to_string : t -> string
(** Pretty one-liner: ["error[unsat-predicate] selection #2: ..."]. *)

val to_machine : t -> string
(** Tab-separated [severity code location message] — one stable line
    per diagnostic for scripts to consume. *)

val pp : Format.formatter -> t -> unit

val sort : t list -> t list
(** Errors first, then warnings, then hints (stable). *)

val has_errors : t list -> bool
val has_warnings : t list -> bool

val render : t list -> string
(** Sorted pretty lines, or ["no diagnostics"]. *)
