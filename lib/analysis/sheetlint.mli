(** Sheetlint — the static analyzer's front door.

    One entry point per thing a shell can hold: a bare predicate, a
    spreadsheet, a live session, a SQL query (parsed or text), or a
    whole SheetMusiq script. Every function is {e total}: analyzer
    bugs surface as an [analyzer-failure] error diagnostic, never as
    an exception (fuzz-tested in [test/test_fuzz.ml]).

    The passes live in {!Expr_lint} (predicate satisfiability and
    redundancy via {!Sheet_rel.Expr_domain}), {!State_lint}
    (query-state structure) and {!Sql_lint} (SQL clauses + the
    Theorem-1 translation of the query). *)

open Sheet_rel
open Sheet_core
open Sheet_sql

val expr :
  ?type_of:(string -> Value.vtype option) -> Expr.t -> Diagnostic.t list

val sheet : Spreadsheet.t -> Diagnostic.t list
val session : Session.t -> Diagnostic.t list
(** Lint the session's current sheet — the REPL/TUI [lint] command. *)

val sql : Catalog.t -> Sql_ast.query -> Diagnostic.t list
val sql_string : Catalog.t -> string -> Diagnostic.t list
(** The [sheetsql] [\lint] command. *)

val script : Session.t -> string -> (Diagnostic.t list, string) result
(** Run a script from the given session and lint the sheet it ends
    on; [Error] when the script itself does not run. *)

val render : Diagnostic.t list -> string
val has_errors : Diagnostic.t list -> bool
val has_warnings : Diagnostic.t list -> bool
