module Obs = Sheet_obs.Obs
module Materialize = Sheet_core.Materialize

(* Row count below which a row-path fallback is noise rather than a
   finding: scanning a few hundred rows costs about as much as
   building the selection vector would. *)
let hot_rows = 512

(* A sort must eat more than half of a region at least this long
   before it is worth reporting; below that the measurement is mostly
   timer and allocator jitter. *)
let sort_min_ns = 1_000_000

let pct num den = 100. *. float_of_int num /. float_of_int (max 1 den)

let rows_touched (p : Obs.Profile.t) =
  List.fold_left
    (fun acc (n : Obs.Profile.node) -> max acc (max n.n_rows_in n.n_rows_out))
    (max 0 p.p_rows_out) p.p_nodes

let examine (p : Obs.Profile.t) =
  let where = Printf.sprintf "profile #%d (%s)" p.p_uid p.p_kind in
  let fallbacks =
    List.map
      (fun (pred, reason) ->
        let msg =
          Printf.sprintf
            "%s: predicate %s fell back to the row path (%s) over %d rows"
            where pred reason (rows_touched p)
        in
        if rows_touched p >= hot_rows then
          Diagnostic.warning ~code:"row-path-fallback" ~loc:Diagnostic.Query
            msg
        else
          Diagnostic.hint ~code:"row-path-fallback" ~loc:Diagnostic.Query msg)
      p.p_fallbacks
  in
  let parallel =
    if
      p.p_domains > 1 && p.p_par_scans > 0
      && p.p_morsels < p.p_domains * p.p_par_scans
    then
      [ Diagnostic.hint ~code:"par-underfilled" ~loc:Diagnostic.Query
          (Printf.sprintf
             "%s: %d morsels over %d parallel scans cannot fill %d domains \
              — most workers idle"
             where p.p_morsels p.p_par_scans p.p_domains) ]
    else []
  in
  let sort =
    if p.p_total_ns >= sort_min_ns then
      List.filter_map
        (fun (n : Obs.Profile.node) ->
          if n.n_kind = "sort" && 2 * n.n_time_ns > p.p_total_ns then
            Some
              (Diagnostic.hint ~code:"sort-dominated" ~loc:Diagnostic.Ordering
                 (Printf.sprintf "%s: %s takes %.0f%% of the region"
                    where n.n_label
                    (pct n.n_time_ns p.p_total_ns)))
          else None)
        p.p_nodes
    else []
  in
  fallbacks @ parallel @ sort

let cache_diagnostics () =
  let s = Materialize.cache_stats () in
  if s.Materialize.evictions > 0 && s.Materialize.subsumed_hits = 0 then
    [ Diagnostic.warning ~code:"cache-thrash" ~loc:Diagnostic.Query
        (Printf.sprintf
           "materialization cache evicted %d time%s without a single \
            subsumed hit — entries die before they can answer anything"
           s.Materialize.evictions
           (if s.Materialize.evictions = 1 then "" else "s")) ]
  else []

let overflow_diagnostics () =
  let overflowing (name, v) =
    if v > 0 && String.ends_with ~suffix:"{__overflow__}" name then
      Some
        (Diagnostic.warning ~code:"label-overflow" ~loc:Diagnostic.Query
           (Printf.sprintf
              "%s absorbed %d event%s — the per-family label cap is \
               exhausted, per-series data is being lost"
              name v
              (if v = 1 then "" else "s")))
    else None
  in
  List.filter_map overflowing (Obs.Metrics.snapshot ())
  @ List.filter_map overflowing (Obs.Histogram.counts_snapshot ())

let slo_diagnostics () =
  List.filter_map
    (fun (v : Obs.Slo.verdict) ->
      if (not v.Obs.Slo.v_ok) && v.Obs.Slo.v_count > 0 then
        Some
          (Diagnostic.error ~code:"slo-burn" ~loc:Diagnostic.Query
             (Printf.sprintf "%s on %s: observed %.3f over limit %.3f"
                v.Obs.Slo.v_slo v.Obs.Slo.v_series v.Obs.Slo.v_observed
                v.Obs.Slo.v_limit))
      else None)
    (Obs.Slo.evaluate ())

let run () =
  (* the doctor observes, it must never bring the patient down *)
  let guard f = try f () with _ -> [] in
  Diagnostic.sort
    (guard (fun () -> List.concat_map examine (Obs.Profile.records ()))
    @ guard cache_diagnostics
    @ guard overflow_diagnostics
    @ guard slo_diagnostics)

let render () = Diagnostic.render (run ())

let summary () =
  let ds = run () in
  let count sev = List.length (List.filter (fun d -> d.Diagnostic.severity = sev) ds) in
  let errors = count Diagnostic.Error
  and warnings = count Diagnostic.Warning
  and hints = count Diagnostic.Hint in
  if errors = 0 && warnings = 0 && hints = 0 then "doctor: ok"
  else
    let part n what = if n = 0 then [] else [ Printf.sprintf "%d %s" n what ] in
    "doctor: "
    ^ String.concat ", "
        (part errors "error" @ part warnings "warn" @ part hints "hint")
