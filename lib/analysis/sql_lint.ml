open Sheet_rel
open Sheet_sql

let dup_diags ~code ~what items =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun item ->
      let key = String.lowercase_ascii item in
      if Hashtbl.mem seen key then
        Some
          (Diagnostic.warning ~code ~loc:(Diagnostic.Clause what)
             (Printf.sprintf "%s lists %s more than once" what item))
      else begin
        Hashtbl.add seen key ();
        None
      end)
    items

(* Structural findings of the translated sheet. Per-clause predicate
   lints are reported above against the SQL text, and the translation
   hides every non-output column by construction, so those codes are
   dropped here to avoid double and spurious reports. *)
let translated_diags catalog query =
  match Sql_to_sheet.translate catalog query with
  | Error _ -> []
  | Ok plan -> (
      match Sql_to_sheet.session_of_plan catalog plan with
      | Error _ -> []
      | Ok session ->
          let clause_level =
            [ "unsat-predicate"; "tautology"; "duplicate-conjunct";
              "redundant-conjunct"; "hidden-referenced";
              "aggregate-selection" ]
          in
          Sheet_core.Session.current session
          |> State_lint.lint
          |> List.filter (fun (d : Diagnostic.t) ->
                 not (List.mem d.code clause_level)))

let lint_query (catalog : Catalog.t) (query : Sql_ast.query) :
    Diagnostic.t list =
  match Sql_analyzer.analyze catalog query with
  | Error msg ->
      [ Diagnostic.error ~code:"invalid-query" ~loc:Diagnostic.Query msg ]
  | Ok resolved ->
      let type_of = Schema.type_of resolved.source_schema in
      let clause name pred =
        match pred with
        | None -> []
        | Some p ->
            Expr_lint.lint_pred ~type_of ~loc:(Diagnostic.Clause name) p
      in
      let q = resolved.query in
      let where = clause "WHERE" q.where in
      let having = clause "HAVING" q.having in
      (* WHERE and HAVING can contradict each other on group columns *)
      let cross =
        match (q.where, q.having) with
        | Some w, Some h
          when (not (Diagnostic.has_errors (where @ having)))
               && not
                    (Expr_domain.satisfiable ~type_of (Expr.And (w, h))) ->
            [ Diagnostic.error ~code:"conflicting-clauses"
                ~loc:(Diagnostic.Clause "HAVING")
                "contradicts the WHERE clause — no group can satisfy both" ]
        | _ -> []
      in
      let dups =
        dup_diags ~code:"duplicate-group-by" ~what:"GROUP BY" q.group_by
        @ dup_diags ~code:"duplicate-order-by" ~what:"ORDER BY"
            (List.map
               (fun (o : Sql_ast.order_item) -> Expr.to_string o.expr)
               q.order_by)
      in
      where @ having @ cross @ dups @ translated_diags catalog query

let lint_string catalog text =
  match Sql_parser.parse text with
  | Error msg ->
      [ Diagnostic.error ~code:"parse-error" ~loc:Diagnostic.Query msg ]
  | Ok query -> lint_query catalog query
