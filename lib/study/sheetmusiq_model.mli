(** Cost model of the SheetMusiq direct-manipulation interface,
    derived from the per-operator interaction designs of Section VI:
    every operation is a contextual-menu interaction with at most a
    short constant to type; the result of each step is immediately
    visible, so mistakes are almost always noticed and cheaply redone;
    no SQL is ever typed, so there are no syntax errors. *)

val model : Tool_model.t

(** {1 Per-user operation streams}

    What the Sheetserve load harness replays: the actual script lines
    a simulated user issues for one task, rather than the aggregate
    timing the {!Simulator} reports. Deterministic in
    [(seed, subject, task)]. *)

type step = {
  line : string;  (** one {!Sheet_core.Script} command line *)
  think_s : float;  (** KLM think/motor time preceding the line *)
}

val script_lines : Sheet_tpch.Tpch_tasks.t -> string list
(** The task's direct-manipulation script as individual action lines
    (blank lines and [#]-comments removed) — the canonical error-free
    stream. *)

val op_stream :
  seed:int -> subject:int -> Sheet_tpch.Tpch_tasks.t -> step list
(** The task's script with deterministic mistake/recovery detours:
    a mis-specified step appears as the step, an ["undo"], and the
    redone step (at most two detours per step, with the same
    per-category error probabilities as the KLM plan). Every stream
    converges to the same final query state as {!script_lines} —
    replaying a stream and replaying the plain script yield identical
    materializations — which is what the server determinism harness
    relies on. *)
