open Sheet_tpch

let repeat n l = List.concat (List.init (max 0 n) (fun _ -> l))

(* Interaction sequences per operator, from the Sec. VI designs. *)

(* right-click a cell or header, pick "Selection", fill the small
   condition dialog (operator choice + a short constant), confirm *)
let selection =
  (Klm.M :: Klm.menu_pick) @ Klm.click @ Klm.type_text 8 @ Klm.dialog_confirm

(* right-click, pick Grouping, answer the add-or-replace prompt *)
let grouping = (Klm.M :: Klm.menu_pick) @ Klm.dialog_confirm

(* right-click a cell, choose "aggregation", pick the function, pick
   the grouping level (Fig. 1's dialog) *)
let aggregation = (Klm.M :: Klm.menu_pick) @ Klm.click @ Klm.dialog_confirm

(* FC dialog: choose columns and operators graphically, optionally
   name the column *)
let formula =
  (Klm.M :: Klm.M :: Klm.menu_pick)
  @ repeat 3 Klm.click @ Klm.type_text 6 @ Klm.dialog_confirm

(* click the column header; one more dialog click when grouped *)
let ordering ~grouped =
  (Klm.M :: Klm.click) @ if grouped then Klm.dialog_confirm else []

(* group qualification = ordinary selection on the aggregate column *)
let having = selection

let projection = Klm.click (* uncheck the header checkbox *)

let reading_pause = [ Klm.R 0.3 ] (* redisplay after each manipulation *)

let plan_of_task (task : Tpch_tasks.t) =
  let f = task.Tpch_tasks.features in
  let n_steps =
    f.Tpch_tasks.n_selections + f.Tpch_tasks.n_group_levels
    + f.Tpch_tasks.n_aggregates + f.Tpch_tasks.n_formulas
    + f.Tpch_tasks.n_orderings + f.Tpch_tasks.n_projections
    + if f.Tpch_tasks.has_having then 1 else 0
  in
  let base_ops =
    repeat f.Tpch_tasks.n_selections selection
    @ repeat f.Tpch_tasks.n_group_levels grouping
    @ repeat f.Tpch_tasks.n_aggregates aggregation
    @ repeat f.Tpch_tasks.n_formulas formula
    @ repeat f.Tpch_tasks.n_orderings
        (ordering ~grouped:(f.Tpch_tasks.n_group_levels > 0))
    @ repeat f.Tpch_tasks.n_projections projection
    @ (if f.Tpch_tasks.has_having then having else [])
    @ repeat n_steps reading_pause
  in
  (* Each small step can still be mis-specified (wrong constant, wrong
     column), but the intermediate result is on screen immediately, so
     detection is near-certain and recovery is one redone step. *)
  let step_error concept n prob recovery =
    List.init n (fun _ ->
        { Tool_model.concept; prob; detect_prob = 0.93;
          recovery_s = recovery })
  in
  { Tool_model.tool = "SheetMusiq";
    base_ops;
    errors =
      step_error "selection" f.Tpch_tasks.n_selections 0.05
        (Klm.total selection)
      @ step_error "grouping" f.Tpch_tasks.n_group_levels 0.04
          (Klm.total grouping)
      @ step_error "aggregation" f.Tpch_tasks.n_aggregates 0.05
          (Klm.total aggregation)
      @ step_error "formula" f.Tpch_tasks.n_formulas 0.08
          (Klm.total formula)
      @ step_error "group-qualification"
          (if f.Tpch_tasks.has_having then 1 else 0)
          0.05 (Klm.total having) }

let model =
  { Tool_model.name = "SheetMusiq";
    plan_of_task;
    (* "most users picked up SheetMusiq much faster" — mild initial
       slow-down, gone by the third task *)
    learning =
      (fun ~trial ->
        match trial with 1 -> 1.30 | 2 -> 1.10 | _ -> 1.0) }

(* ---- per-user operation streams (Sheetserve load replay) ----

   The simulator above only answers "how long did the task take"; the
   load harness needs the actual line-by-line stream a simulated user
   issues. A stream is the task's direct-manipulation script with
   deterministic mistake/recovery detours woven in: with the same
   per-category error probabilities as [plan_of_task], a step is
   mis-specified, noticed on the immediately visible redisplay (the
   paper's second principle makes detection near-certain, so streams
   model every mistake as detected), undone, and redone. A stream
   therefore always converges to the task script's final query state —
   exactly the property the server determinism harness replays
   against — while still exercising apply/undo/redo traffic shaped
   like the study population's. *)

type step = { line : string; think_s : float }

let script_lines (task : Tpch_tasks.t) =
  String.split_on_char '\n' task.Tpch_tasks.script
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))

(* First word of a script line -> (KLM interaction, per-attempt
   mis-specification probability). Mirrors plan_of_task's costs. *)
let interaction_of_line ~grouped line =
  let word =
    match String.index_opt line ' ' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match word with
  | "select" -> (selection, 0.05)
  | "group" | "regroup" | "ungroup" -> (grouping, 0.04)
  | "agg" -> (aggregation, 0.05)
  | "formula" -> (formula, 0.08)
  | "order" | "order-groups" -> (ordering ~grouped, 0.02)
  | "hide" | "show" -> (projection, 0.01)
  | "dedup" -> (Klm.M :: Klm.menu_pick, 0.01)
  | _ -> (Klm.M :: Klm.menu_pick, 0.02)

let mix_seed ~seed ~subject ~task_id =
  (* splitmix-style avalanche so nearby (subject, task) pairs do not
     produce correlated streams *)
  let h = ref (seed lxor 0x9E3779B97F4A7C1) in
  h := (!h lxor (subject * 0xBF58476D1CE4E5B)) * 0x94D049BB133111E;
  h := (!h lxor (task_id * 0xFF51AFD7ED558CC)) land max_int;
  !h

let op_stream ~seed ~subject (task : Tpch_tasks.t) =
  let rng = Sheet_stats.Rng.create (mix_seed ~seed ~subject ~task_id:task.Tpch_tasks.id) in
  let grouped = task.Tpch_tasks.grouped in
  let undo_think = Klm.total (Klm.M :: Klm.menu_pick) in
  List.concat_map
    (fun line ->
      let interaction, prob = interaction_of_line ~grouped line in
      let think = Klm.total interaction +. 0.3 (* reading pause *) in
      (* up to two botched attempts, like the simulator's re-rolls *)
      let rec detours tries acc =
        if tries >= 2 then List.rev acc
        else if Sheet_stats.Rng.float rng 1.0 < prob then
          detours (tries + 1)
            ({ line = "undo"; think_s = undo_think }
             :: { line; think_s = think } :: acc)
        else List.rev acc
      in
      detours 0 [] @ [ { line; think_s = think } ])
    (script_lines task)
