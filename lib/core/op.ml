open Sheet_rel

type t =
  | Group of { basis : string list; dir : Grouping.dir }
  | Regroup of { basis : string list; dir : Grouping.dir }
  | Ungroup
  | Order of { attr : string; dir : Grouping.dir; level : int }
  | Order_groups of { attr : string; dir : Grouping.dir }
  | Select of Expr.t
  | Project of string
  | Unproject of string
  | Product of string
  | Union of string
  | Diff of string
  | Join of { stored : string; cond : Expr.t }
  | Aggregate of {
      fn : Expr.agg_fun;
      col : string option;
      level : int;
      as_name : string option;
    }
  | Formula of { name : string option; expr : Expr.t }
  | Dedup
  | Rename of { old_name : string; new_name : string }

let kind = function
  | Group _ -> "group"
  | Regroup _ -> "regroup"
  | Ungroup -> "ungroup"
  | Order _ -> "order"
  | Order_groups _ -> "order-groups"
  | Select _ -> "select"
  | Project _ -> "project"
  | Unproject _ -> "unproject"
  | Product _ -> "product"
  | Union _ -> "union"
  | Diff _ -> "difference"
  | Join _ -> "join"
  | Aggregate _ -> "aggregate"
  | Formula _ -> "formula"
  | Dedup -> "dedup"
  | Rename _ -> "rename"

let describe = function
  | Group { basis; dir } ->
      Printf.sprintf "Group by {%s} %s"
        (String.concat ", " basis)
        (Grouping.dir_to_string dir)
  | Regroup { basis; dir } ->
      Printf.sprintf "Regroup by {%s} %s"
        (String.concat ", " basis)
        (Grouping.dir_to_string dir)
  | Ungroup -> "Remove grouping"
  | Order { attr; dir; level } ->
      Printf.sprintf "Order by %s %s at level %d" attr
        (Grouping.dir_to_string dir)
        level
  | Order_groups { attr; dir } ->
      Printf.sprintf "Order groups by %s %s" attr (Grouping.dir_to_string dir)
  | Select e -> Printf.sprintf "Select %s" (Expr.to_string e)
  | Project c -> Printf.sprintf "Hide column %s" c
  | Unproject c -> Printf.sprintf "Restore column %s" c
  | Product s -> Printf.sprintf "Cartesian product with %s" s
  | Union s -> Printf.sprintf "Union with %s" s
  | Diff s -> Printf.sprintf "Difference with %s" s
  | Join { stored; cond } ->
      Printf.sprintf "Join with %s on %s" stored (Expr.to_string cond)
  | Aggregate { fn; col; level; as_name } ->
      Printf.sprintf "Aggregate %s(%s) at level %d%s"
        (Expr.agg_fun_name fn)
        (match col with Some c -> c | None -> "*")
        level
        (match as_name with Some n -> " as " ^ n | None -> "")
  | Formula { name; expr } ->
      Printf.sprintf "Formula %s= %s"
        (match name with Some n -> n ^ " " | None -> "")
        (Expr.to_string expr)
  | Dedup -> "Eliminate duplicates"
  | Rename { old_name; new_name } ->
      Printf.sprintf "Rename %s to %s" old_name new_name

let pp ppf t = Format.pp_print_string ppf (describe t)
