(** First-class descriptions of spreadsheet-algebra operator
    invocations.

    Every user manipulation is one of these values; the engine
    interprets them, the history menu displays them ("a numbered list,
    each with meaningful names" — Sec. VI), scripts serialize them,
    and the user-study simulator costs them. *)

open Sheet_rel

type t =
  | Group of { basis : string list; dir : Grouping.dir }
      (** [τ]: full grouping-basis (superset of the current finest) *)
  | Regroup of { basis : string list; dir : Grouping.dir }
      (** destroy the current grouping and group afresh (Sec. VI-A) *)
  | Ungroup  (** destroy all grouping *)
  | Order of { attr : string; dir : Grouping.dir; level : int }  (** [λ] *)
  | Order_groups of { attr : string; dir : Grouping.dir }
      (** extension: order the sibling groups at an aggregate's level
          by that aggregate's value ("largest revenue first") — see
          {!Grouping.level.order_by_value} *)
  | Select of Expr.t  (** [σ] *)
  | Project of string  (** [π]: hide one column *)
  | Unproject of string  (** [Π_ī]: reinstate a hidden column (Sec. V-B) *)
  | Product of string  (** [×] with the named stored spreadsheet *)
  | Union of string  (** [∪] *)
  | Diff of string  (** [−] *)
  | Join of { stored : string; cond : Expr.t }  (** [⋈] *)
  | Aggregate of {
      fn : Expr.agg_fun;
      col : string option;  (** [None] only for count-star *)
      level : int;
      as_name : string option;
    }  (** [η] *)
  | Formula of { name : string option; expr : Expr.t }  (** [θ] *)
  | Dedup  (** [δ], duplicate elimination *)
  | Rename of { old_name : string; new_name : string }

val describe : t -> string
(** Meaningful name for the history menu. *)

val kind : t -> string
(** Short constructor tag ("select", "group", ...) used as the span
    category by the {!Sheet_obs} instrumentation. *)

val pp : Format.formatter -> t -> unit
