open Sheet_rel
module Obs = Sheet_obs.Obs

let c_derivations = Obs.Metrics.counter Obs.k_incremental_derivations
let c_fallbacks = Obs.Metrics.counter Obs.k_incremental_fallbacks

let sort_keys_of sheet =
  List.map
    (fun (attr, dir) ->
      (attr, match dir with Grouping.Asc -> `Asc | Grouping.Desc -> `Desc))
    (Grouping.sort_keys (Spreadsheet.grouping sheet))

let resort child parent_full =
  let keys = sort_keys_of child in
  if keys = [] then parent_full else Rel_algebra.sort keys parent_full

(* The newest computed column of the child, when the operator just
   appended one. *)
let last_computed (child : Spreadsheet.t) =
  match List.rev child.Spreadsheet.state.Query_state.computed with
  | c :: _ -> c
  | [] -> invalid_arg "Incremental.last_computed"

let append_computed child parent_full =
  let c = last_computed child in
  let schema = Relation.schema parent_full in
  let data = Relation.to_array parent_full in
  let index = Schema.compile_index schema in
  let cells =
    match c.Computed.spec with
    | Computed.Formula e ->
        Array.map
          (fun row ->
            Expr_eval.eval ~lookup:(fun name -> Row.get row (index name)) e)
          data
    | Computed.Aggregate { fn; arg; level } ->
        let basis =
          Grouping.cumulative_basis (Spreadsheet.grouping child) level
        in
        let positions =
          Array.of_list (List.map (Schema.index_exn schema) basis)
        in
        let groups = Row.Tbl.create (max 16 (Array.length data)) in
        Array.iter
          (fun row ->
            let key = Row.project_arr row positions in
            match Row.Tbl.find_opt groups key with
            | Some cell -> cell := row :: !cell
            | None -> Row.Tbl.add groups key (ref [ row ]))
          data;
        let value_of = Row.Tbl.create (max 16 (Row.Tbl.length groups)) in
        Row.Tbl.iter
          (fun key cell ->
            let group_rows = List.rev !cell in
            let values =
              match (fn, arg) with
              | Expr.Count_star, _ ->
                  List.map (fun _ -> Value.Null) group_rows
              | _, Some e ->
                  List.map
                    (fun row ->
                      Expr_eval.eval
                        ~lookup:(fun name -> Row.get row (index name))
                        e)
                    group_rows
              | _, None -> failwith "aggregate without argument"
            in
            Row.Tbl.add value_of key (Expr_eval.apply_agg fn values))
          groups;
        Array.map
          (fun row ->
            let key = Row.project_arr row positions in
            match Row.Tbl.find_opt value_of key with
            | Some v -> v
            | None -> assert false)
          data
  in
  let schema =
    Schema.append schema { Schema.name = c.Computed.name; ty = c.Computed.ty }
  in
  Relation.unsafe_of_array schema (Array.map2 Row.append1 data cells)

let filter_full pred parent_full =
  let schema = Relation.schema parent_full in
  Relation.unsafe_of_array schema
    (Rel_algebra.select_rows ~rel:parent_full schema [ pred ]
       (Relation.to_array parent_full))

let derive ~(parent : Spreadsheet.t) ~(op : Op.t) ~(child : Spreadsheet.t) =
  let parent_full () = Materialize.full_cached parent in
  let state = child.Spreadsheet.state in
  match op with
  | Op.Project _ | Op.Unproject _ ->
      (* presentational — unless DE keys off the visible column set *)
      if state.Query_state.dedup then None else Some (parent_full ())
  | Op.Group _ | Op.Regroup _ | Op.Ungroup | Op.Order _
  | Op.Order_groups _ ->
      (* content is unchanged (the engine refused anything that would
         invalidate computed values); only the presentation order
         moves *)
      Some (resort child (parent_full ()))
  | Op.Select pred ->
      (* safe only when the selection lands in the highest stratum:
         nothing recomputes after it *)
      if
        Query_state.selection_stratum state pred
        = List.length state.Query_state.computed
      then Some (filter_full pred (parent_full ()))
      else None
  | Op.Aggregate _ | Op.Formula _ ->
      (* a fresh computed column is appended after every existing
         stratum; the appended column cannot disturb the sort keys *)
      Some (append_computed child (parent_full ()))
  | Op.Dedup ->
      (* equal visible rows are equal full rows only when nothing is
         hidden and no computed column could differ *)
      if
        state.Query_state.hidden = []
        && state.Query_state.computed = []
      then Some (Rel_algebra.distinct (parent_full ()))
      else None
  | Op.Rename _ | Op.Product _ | Op.Union _ | Op.Diff _ | Op.Join _ ->
      None

let h_derive = Obs.Histogram.histogram Obs.h_incremental_derive

let materialize_after ~parent ~op ~child =
  (* One profile region per derived child; [derive] reaching the
     parent through [Materialize.full_cached] opens (and commits) its
     own region for the parent's uid, while the fallback
     [Materialize.full child] collapses into this one. *)
  Obs.Profile.enter ~kind:"incremental" ~uid:child.Spreadsheet.uid;
  let commit rel = Obs.Profile.commit ~rows_out:(Relation.cardinality rel) in
  match
    let sp =
      Obs.span ~uid:child.Spreadsheet.uid ~kind:(Op.kind op)
        "incremental.materialize_after"
    in
    let t0 = Obs.now_ns () in
    let rel =
      match derive ~parent ~op ~child with
      | Some rel ->
          Obs.Metrics.incr c_derivations;
          Obs.Histogram.record h_derive (Obs.now_ns () - t0);
          Obs.Profile.note_strategy "incremental";
          rel
      | None ->
          Obs.Metrics.incr c_fallbacks;
          Materialize.full child
    in
    Materialize.seed_cache child rel;
    Obs.finish
      ~rows_out:(if Obs.recording () then Relation.cardinality rel else -1)
      sp;
    rel
  with
  | rel ->
      commit rel;
      rel
  | exception e ->
      Obs.Profile.commit ~rows_out:(-1);
      raise e
