open Sheet_rel
module Obs = Sheet_obs.Obs

let c_derivations = Obs.Metrics.counter Obs.k_incremental_derivations
let c_fallbacks = Obs.Metrics.counter Obs.k_incremental_fallbacks

let sort_keys_of sheet =
  List.map
    (fun (attr, dir) ->
      (attr, match dir with Grouping.Asc -> `Asc | Grouping.Desc -> `Desc))
    (Grouping.sort_keys (Spreadsheet.grouping sheet))

let resort child parent_full =
  let keys = sort_keys_of child in
  if keys = [] then parent_full else Rel_algebra.sort keys parent_full

(* The newest computed column of the child, when the operator just
   appended one. *)
let last_computed (child : Spreadsheet.t) =
  match List.rev child.Spreadsheet.state.Query_state.computed with
  | c :: _ -> c
  | [] -> invalid_arg "Incremental.last_computed"

let append_computed child parent_full =
  let c = last_computed child in
  let schema = Relation.schema parent_full in
  let rows = Relation.rows parent_full in
  let cells =
    match c.Computed.spec with
    | Computed.Formula e ->
        List.map
          (fun row ->
            Expr_eval.eval
              ~lookup:(fun name -> Row.get row (Schema.index_exn schema name))
              e)
          rows
    | Computed.Aggregate { fn; arg; level } ->
        let basis =
          Grouping.cumulative_basis (Spreadsheet.grouping child) level
        in
        let positions = List.map (Schema.index_exn schema) basis in
        let groups = Hashtbl.create 32 in
        let order = ref [] in
        List.iter
          (fun row ->
            let key = Row.project row positions in
            let h = Row.hash key in
            let bucket =
              Hashtbl.find_opt groups h |> Option.value ~default:[]
            in
            match List.find_opt (fun (k, _) -> Row.equal k key) bucket with
            | Some (_, cell) -> cell := row :: !cell
            | None ->
                let cell = ref [ row ] in
                Hashtbl.replace groups h ((key, cell) :: bucket);
                order := (key, cell) :: !order)
          rows;
        let value_of = Hashtbl.create 32 in
        List.iter
          (fun (key, cell) ->
            let group_rows = List.rev !cell in
            let values =
              match (fn, arg) with
              | Expr.Count_star, _ ->
                  List.map (fun _ -> Value.Null) group_rows
              | _, Some e ->
                  List.map
                    (fun row ->
                      Expr_eval.eval
                        ~lookup:(fun name ->
                          Row.get row (Schema.index_exn schema name))
                        e)
                    group_rows
              | _, None -> failwith "aggregate without argument"
            in
            Hashtbl.add value_of (Row.hash key)
              (key, Expr_eval.apply_agg fn values))
          !order;
        List.map
          (fun row ->
            let key = Row.project row positions in
            match
              List.find_opt
                (fun (k, _) -> Row.equal k key)
                (Hashtbl.find_all value_of (Row.hash key))
            with
            | Some (_, v) -> v
            | None -> assert false)
          rows
  in
  let schema =
    Schema.append schema { Schema.name = c.Computed.name; ty = c.Computed.ty }
  in
  Relation.unsafe_make schema (List.map2 Row.append1 rows cells)

let filter_full pred parent_full =
  let schema = Relation.schema parent_full in
  Relation.unsafe_make schema
    (List.filter
       (fun row ->
         Expr_eval.eval_pred
           ~lookup:(fun name -> Row.get row (Schema.index_exn schema name))
           pred)
       (Relation.rows parent_full))

let derive ~(parent : Spreadsheet.t) ~(op : Op.t) ~(child : Spreadsheet.t) =
  let parent_full () = Materialize.full_cached parent in
  let state = child.Spreadsheet.state in
  match op with
  | Op.Project _ | Op.Unproject _ ->
      (* presentational — unless DE keys off the visible column set *)
      if state.Query_state.dedup then None else Some (parent_full ())
  | Op.Group _ | Op.Regroup _ | Op.Ungroup | Op.Order _
  | Op.Order_groups _ ->
      (* content is unchanged (the engine refused anything that would
         invalidate computed values); only the presentation order
         moves *)
      Some (resort child (parent_full ()))
  | Op.Select pred ->
      (* safe only when the selection lands in the highest stratum:
         nothing recomputes after it *)
      if
        Query_state.selection_stratum state pred
        = List.length state.Query_state.computed
      then Some (filter_full pred (parent_full ()))
      else None
  | Op.Aggregate _ | Op.Formula _ ->
      (* a fresh computed column is appended after every existing
         stratum; the appended column cannot disturb the sort keys *)
      Some (append_computed child (parent_full ()))
  | Op.Dedup ->
      (* equal visible rows are equal full rows only when nothing is
         hidden and no computed column could differ *)
      if
        state.Query_state.hidden = []
        && state.Query_state.computed = []
      then Some (Rel_algebra.distinct (parent_full ()))
      else None
  | Op.Rename _ | Op.Product _ | Op.Union _ | Op.Diff _ | Op.Join _ ->
      None

let h_derive = Obs.Histogram.histogram Obs.h_incremental_derive

let materialize_after ~parent ~op ~child =
  let sp =
    Obs.span ~uid:child.Spreadsheet.uid ~kind:(Op.kind op)
      "incremental.materialize_after"
  in
  let t0 = Obs.now_ns () in
  let rel =
    match derive ~parent ~op ~child with
    | Some rel ->
        Obs.Metrics.incr c_derivations;
        Obs.Histogram.record h_derive (Obs.now_ns () - t0);
        rel
    | None ->
        Obs.Metrics.incr c_fallbacks;
        Materialize.full child
  in
  Materialize.seed_cache child rel;
  Obs.finish
    ~rows_out:(if Obs.recording () then Relation.cardinality rel else -1)
    sp;
  rel
