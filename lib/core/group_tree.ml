open Sheet_rel

type node = {
  level : int;
  key : (string * Value.t) list;
  members : members;
}

and members = Groups of node list | Rows of Row.t list

type t = { schema : Schema.t; members : members }

(* Split consecutive rows into runs with equal values at [positions].
   The rows are already in presentation order, so groups are runs;
   each run is returned as a sub-array slice (one copy, no per-row
   consing). *)
let runs positions data =
  let key row = Row.project_arr row positions in
  let n = Array.length data in
  let out = Vec.create () in
  let i = ref 0 in
  while !i < n do
    let k = key data.(!i) in
    let j = ref (!i + 1) in
    while !j < n && Row.equal (key data.(!j)) k do
      incr j
    done;
    Vec.push out (k, Array.sub data !i (!j - !i));
    i := !j
  done;
  Array.to_list (Vec.to_array out)

let build sheet =
  let rel = Materialize.full sheet in
  let schema = Relation.schema rel in
  let grouping = Spreadsheet.grouping sheet in
  let rec split level data =
    match List.nth_opt grouping.Grouping.levels (level - 2) with
    | None -> Rows (Array.to_list data)
    | Some lv ->
        let positions =
          Array.of_list
            (List.map (Schema.index_exn schema) lv.Grouping.basis_add)
        in
        Groups
          (List.map
             (fun (key_row, group_rows) ->
               { level;
                 key =
                   List.map2
                     (fun name v -> (name, v))
                     lv.Grouping.basis_add
                     (Row.to_list key_row);
                 members = split (level + 1) group_rows })
             (runs positions data))
  in
  { schema; members = split 2 (Relation.to_array rel) }

let rec members_rows = function
  | Rows rows -> rows
  | Groups nodes ->
      List.concat_map (fun (n : node) -> members_rows n.members) nodes

let rows t = members_rows t.members

let group_count t ~level =
  if level = 1 then 1
  else
    let rec count m =
      match m with
      | Rows _ -> 0
      | Groups nodes ->
          List.fold_left
            (fun acc (n : node) ->
              if n.level = level then acc + 1 else acc + count n.members)
            0 nodes
    in
    count t.members

let depth t =
  let rec go = function
    | Rows _ -> 1
    | Groups ((n : node) :: _) -> 1 + go n.members
    | Groups [] -> 1
  in
  go t.members

let to_string ?max_rows t =
  let buf = Buffer.create 1024 in
  let emitted = ref 0 in
  let budget = Option.value max_rows ~default:max_int in
  let indent n = String.make (2 * n) ' ' in
  let rec emit depth m =
    match m with
    | Rows rows ->
        List.iter
          (fun row ->
            if !emitted < budget then begin
              incr emitted;
              Buffer.add_string buf (indent depth);
              Buffer.add_string buf
                (String.concat " | "
                   (List.map Value.to_string (Row.to_list row)));
              Buffer.add_char buf '\n'
            end)
          rows
    | Groups nodes ->
        List.iter
          (fun (n : node) ->
            if !emitted < budget then begin
              Buffer.add_string buf (indent (depth - 1));
              Buffer.add_string buf "+ ";
              Buffer.add_string buf
                (String.concat ", "
                   (List.map
                      (fun (name, v) ->
                        Printf.sprintf "%s = %s" name (Value.to_string v))
                      n.key));
              Buffer.add_char buf '\n';
              emit (depth + 1) n.members
            end)
          nodes
  in
  emit 1 t.members;
  if !emitted >= budget then Buffer.add_string buf "...\n";
  Buffer.contents buf
