(** Physical evaluation plans.

    {!Materialize} interprets the query state directly; this module
    compiles the same state into an explicit operator tree — the shape
    in which the paper's prototype pushed manipulations down to its
    RDBMS — so that it can be inspected ([explain], the REPL's
    [explain] command), optimized, and compared against the
    interpreter (property-tested equal).

    The compiled plan mirrors the stratified replay exactly: filters
    sit at their precedence stratum, aggregate extensions carry their
    grouping basis, and a final sort realizes the recursive grouping.
    {!optimize} then applies classical, semantics-preserving
    rewrites:

    - {e filter fusion}: adjacent filters merge into one conjunction
      (one pass over the data instead of several);
    - {e filter pushdown}: a filter slides below formula extensions it
      does not read (never below an aggregate extension — that would
      change the aggregate, i.e. turn HAVING into WHERE — and never
      below duplicate elimination, which could change the surviving
      representative);
    - {e projection pruning}: when the consumer only needs some
      columns ([~keep]), a projection is pushed onto the scan and
      extensions whose outputs are never consumed are dropped;
    - {e predicate pruning} (via {!Sheet_rel.Expr_domain}): a fused
      filter proved unsatisfiable compiles its subtree to an empty
      scan of the right schema without reading a row, and conjuncts
      proved tautological or implied by the remaining conjuncts are
      dropped. Both proofs hold over every row (nulls included), so
      {!execute} on the optimized plan still equals
      {!Materialize.full} — property-tested. *)

open Sheet_rel

type node =
  | Scan of Relation.t
  | Project of string list * node  (** keep the named columns *)
  | Filter of Expr.t * node
  | Distinct_on of string list * node
      (** duplicate elimination keyed on the given columns; first
          occurrence survives *)
  | Extend_formula of extend * node
  | Extend_aggregate of extend_agg * node
  | Sort of (string * [ `Asc | `Desc ]) list * node

and extend = { name : string; ty : Value.vtype; expr : Expr.t }

and extend_agg = {
  agg_name : string;
  agg_ty : Value.vtype;
  fn : Expr.agg_fun;
  arg : Expr.t option;
  basis : string list;  (** grouping columns of the aggregate's level *)
}

val of_sheet : Spreadsheet.t -> node
(** Compile the sheet's query state. Executing the result equals
    {!Materialize.full}. *)

val execute : ?uid:int -> node -> Relation.t
(** Run the plan. Opens a Sheetdoctor profile region (kind ["plan"],
    keyed on [uid], default [0]) for the duration, so fused-run
    extents, columnar-vs-row path attribution and counter deltas land
    in {!Sheet_obs.Obs.Profile}. *)

(** {2 Instrumented execution — EXPLAIN ANALYZE}

    A plan is a chain (every node has at most one child), so a profile
    mirrors that chain: per node, the label {!explain} would print,
    the output cardinality, and self wall time (child excluded). *)

type profile = {
  p_label : string;
  p_rows_out : int;
  p_time_ns : int;  (** this node only, child excluded *)
  p_child : profile option;
}

val execute_instrumented : ?uid:int -> node -> Relation.t * profile
(** Same result as {!execute} (property-tested, sink on or off), plus
    the per-node profile. Emits one [plan.node] span per node and
    bumps the [plan.*] counters whatever the sink. Also records a
    Sheetdoctor profile region (kind ["plan"], keyed on [uid]) with
    one node entry per plan node, including allocation deltas. *)

val explain_analyze : ?uid:int -> node -> Relation.t * profile * string
(** {!execute_instrumented} plus the rendered tree — one line per node
    with rows, self time, and percentage of total. *)

val profile_total_ns : profile -> int

val render_profile : profile -> string

val optimize : ?keep:string list -> node -> node
(** Rewrite the plan; [keep] lists the columns the consumer needs
    (defaults to all columns the plan produces). Semantics are
    preserved with respect to the kept columns. *)

val explain : node -> string
(** Indented operator tree, one line per node, leaves last. *)

val output_columns : node -> string list
(** Schema (names) the plan produces, in order. *)

val output_schema : node -> Sheet_rel.Schema.t
(** The typed schema the plan produces — usable before execution. *)
