open Sheet_rel

type outcome =
  | Equal
  | Subsumed of Sheetsolve.proof
  | Incomparable of string

(* ---------- structural equalities (no polymorphic compare on
   expression-bearing types) ---------- *)

let spec_equal (a : Computed.spec) (b : Computed.spec) =
  match (a, b) with
  | Computed.Formula e1, Computed.Formula e2 -> Expr.equal e1 e2
  | ( Computed.Aggregate { fn = f1; arg = a1; level = l1 },
      Computed.Aggregate { fn = f2; arg = a2; level = l2 } ) ->
      f1 = f2 && l1 = l2 && Option.equal Expr.equal a1 a2
  | _ -> false

let computed_equal (a : Computed.t) (b : Computed.t) =
  String.equal a.name b.name && a.ty = b.ty && spec_equal a.spec b.spec

let rec multiset_sub eq xs ys =
  match xs with
  | [] -> true
  | x :: rest -> (
      let rec remove_one = function
        | [] -> None
        | y :: ys' ->
            if eq x y then Some ys'
            else Option.map (fun r -> y :: r) (remove_one ys')
      in
      match remove_one ys with
      | None -> false
      | Some ys' -> multiset_sub eq rest ys')

let multiset_equal eq xs ys =
  List.length xs = List.length ys && multiset_sub eq xs ys

let string_set xs = List.sort_uniq String.compare xs

(* ---------- state ingredients ---------- *)

let selection_preds (s : Query_state.t) =
  List.map (fun sel -> sel.Query_state.pred) s.selections

let selection_conj (s : Query_state.t) =
  match selection_preds s with
  | [] -> Expr.Const (Value.Bool true)
  | p :: ps -> List.fold_left (fun acc q -> Expr.And (acc, q)) p ps

let preds_below_stratum (s : Query_state.t) stratum =
  List.filter
    (fun p -> Query_state.selection_stratum s p < stratum)
    (selection_preds s)

let stratum0_preds (s : Query_state.t) =
  List.filter
    (fun p -> Query_state.selection_stratum s p = 0)
    (selection_preds s)

(* Deepest computed column whose cells depend on which rows are
   present: aggregates, and formulas embedding an inline aggregate.
   Plain formulas are row-local — earlier selections cannot change a
   surviving row's formula cells. *)
let max_row_sensitive_rank (s : Query_state.t) =
  List.fold_left
    (fun (rank, acc) (c : Computed.t) ->
      let rank = rank + 1 in
      let sensitive =
        match c.spec with
        | Computed.Aggregate _ -> true
        | Computed.Formula e -> Expr.has_agg e
      in
      (rank, if sensitive then rank else acc))
    (0, 0) s.computed
  |> snd

let grouping_bases (g : Grouping.t) =
  List.map (fun (l : Grouping.level) -> string_set l.basis_add) g.levels

let hidden_base (s : Query_state.t) =
  let computed_names =
    List.map (fun (c : Computed.t) -> c.Computed.name) s.computed
  in
  string_set
    (List.filter (fun h -> not (List.mem h computed_names)) s.hidden)

(* ---------- the check ---------- *)

let check ~type_of ~(candidate : Query_state.t) ~(cached : Query_state.t) :
    outcome =
  if
    not
      (List.length candidate.computed = List.length cached.computed
      && List.for_all2 computed_equal candidate.computed cached.computed)
  then Incomparable "computed columns differ"
  else if candidate.dedup <> cached.dedup then
    Incomparable "duplicate elimination differs"
  else if
    candidate.dedup
    && not
         (multiset_equal Expr.equal (stratum0_preds candidate)
            (stratum0_preds cached)
         && hidden_base candidate = hidden_base cached)
  then Incomparable "dedup key or its input rows differ"
  else
    let agg_rank = max_row_sensitive_rank candidate in
    if
      agg_rank > 0
      && not
           (grouping_bases candidate.grouping = grouping_bases cached.grouping
           && multiset_equal Expr.equal
                (preds_below_stratum candidate agg_rank)
                (preds_below_stratum cached agg_rank))
    then Incomparable "aggregate input rows differ"
    else if
      multiset_equal Expr.equal (selection_preds candidate)
        (selection_preds cached)
    then Equal
    else
      match
        Sheetsolve.subsumes ~type_of (selection_conj candidate)
          (selection_conj cached)
      with
      | Some proof -> Subsumed proof
      | None -> Incomparable "selection not provably implied"

let describe = function
  | Equal -> "equal selections"
  | Subsumed (Sheetsolve.By_cases steps) ->
      Printf.sprintf "subsumed (by cases, %d disjunct(s))" (List.length steps)
  | Subsumed (Sheetsolve.By_refutation cols) ->
      Printf.sprintf "subsumed (by refutation%s)"
        (match cols with
        | [] -> ""
        | cs -> " on " ^ String.concat ", " cs)
  | Incomparable why -> "incomparable: " ^ why
