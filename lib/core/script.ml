open Sheet_rel
module Obs = Sheet_obs.Obs
module Obs_json = Sheet_obs.Obs_json

type outcome = { session : Session.t; output : string option }

let trim = String.trim

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Split "head rest" at the first space. *)
let head_rest s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      ( String.sub s 0 i,
        trim (String.sub s (i + 1) (String.length s - i - 1)) )

let parse_dir = function
  | "asc" | "ASC" -> Some Grouping.Asc
  | "desc" | "DESC" -> Some Grouping.Desc
  | _ -> None

let parse_pred text =
  match Expr_parse.parse_string text with
  | Ok e -> Ok e
  | Error msg -> Error (Printf.sprintf "cannot parse %S: %s" text msg)

let parse_cols_dir rest =
  (* "<col>[, <col>...] [asc|desc]" *)
  let words = split_words rest in
  let dir, words =
    match List.rev words with
    | last :: init_rev when Option.is_some (parse_dir last) ->
        (Option.get (parse_dir last), List.rev init_rev)
    | _ -> (Grouping.Asc, words)
  in
  let cols =
    String.concat " " words |> String.split_on_char ','
    |> List.map trim
    |> List.filter (fun c -> c <> "")
  in
  if cols = [] then Error "expected column name(s)" else Ok (cols, dir)

let apply_op session op =
  match Session.apply session op with
  | Ok session -> Ok { session; output = None }
  | Error e -> Error (Errors.to_string e)

let finest_level session =
  Grouping.num_levels (Spreadsheet.grouping (Session.current session))

(* Parse trailing "level <n>" and "as <name>" options from a word list. *)
let rec extract_options words ~level ~as_name =
  match words with
  | "level" :: n :: rest -> (
      match int_of_string_opt n with
      | Some l -> extract_options rest ~level:(Some l) ~as_name
      | None -> Error (Printf.sprintf "bad level %S" n))
  | "as" :: name :: rest -> extract_options rest ~level ~as_name:(Some name)
  | [] -> Ok (level, as_name)
  | w :: _ -> Error (Printf.sprintf "unexpected %S" w)

let run_order session rest =
  match split_words rest with
  | col :: rest_words -> (
      let dir, rest_words =
        match rest_words with
        | d :: more when Option.is_some (parse_dir d) ->
            (Option.get (parse_dir d), more)
        | _ -> (Grouping.Asc, rest_words)
      in
      match extract_options rest_words ~level:None ~as_name:None with
      | Error msg -> Error msg
      | Ok (_, Some _) -> Error "order does not take 'as'"
      | Ok (level, None) ->
          let level =
            Option.value level ~default:(finest_level session)
          in
          apply_op session (Op.Order { attr = col; dir; level }))
  | [] -> Error "order: expected column"

let run_agg session rest =
  match split_words rest with
  | [] -> Error "agg: expected function"
  | fn_word :: rest_words -> (
      let fn =
        match String.lowercase_ascii fn_word with
        | "count" -> Ok `Count
        | "count_distinct" | "countd" -> Ok (`Fn Expr.Count_distinct)
        | "sum" -> Ok (`Fn Expr.Sum)
        | "avg" -> Ok (`Fn Expr.Avg)
        | "min" -> Ok (`Fn Expr.Min)
        | "max" -> Ok (`Fn Expr.Max)
        | other -> Error (Printf.sprintf "unknown aggregate %S" other)
      in
      match fn with
      | Error msg -> Error msg
      | Ok fn -> (
          let col, rest_words =
            match rest_words with
            | c :: more when c <> "level" && c <> "as" -> (Some c, more)
            | _ -> (None, rest_words)
          in
          match extract_options rest_words ~level:None ~as_name:None with
          | Error msg -> Error msg
          | Ok (level, as_name) ->
              let level =
                Option.value level ~default:(finest_level session)
              in
              let fn =
                match (fn, col) with
                | `Count, None -> Expr.Count_star
                | `Count, Some _ -> Expr.Count
                | `Fn f, _ -> f
              in
              apply_op session (Op.Aggregate { fn; col; level; as_name })))

let run_formula session rest =
  (* "name = expr" when the text before the first '=' is a single
     identifier and the '=' is not part of <=, >=, <>, !=, ==. *)
  let named =
    match String.index_opt rest '=' with
    | Some i
      when i > 0 && i < String.length rest - 1
           && (not (List.mem rest.[i - 1] [ '<'; '>'; '!' ]))
           && rest.[i + 1] <> '=' -> (
        let left = trim (String.sub rest 0 i) in
        let right = trim (String.sub rest (i + 1) (String.length rest - i - 1)) in
        let is_ident =
          left <> ""
          && String.for_all
               (fun c ->
                 (c >= 'a' && c <= 'z')
                 || (c >= 'A' && c <= 'Z')
                 || (c >= '0' && c <= '9')
                 || c = '_')
               left
          && not (left.[0] >= '0' && left.[0] <= '9')
        in
        if is_ident then Some (left, right) else None)
    | _ -> None
  in
  let name, body =
    match named with
    | Some (n, b) -> (Some n, b)
    | None -> (None, rest)
  in
  match parse_pred body with
  | Error msg -> Error msg
  | Ok expr -> apply_op session (Op.Formula { name; expr })

(* Cut a trailing #-comment, but never inside a '...' string literal
   (task predicates legitimately contain values like 'Brand#12'). *)
let strip_comment line =
  let n = String.length line in
  let rec scan i in_string =
    if i >= n then line
    else
      match line.[i] with
      | '\'' -> scan (i + 1) (not in_string)
      | '#' when not in_string -> String.sub line 0 i
      | _ -> scan (i + 1) in_string
  in
  scan 0 false

let run_line session line =
  let line = trim (strip_comment line) in
  if line = "" then Ok { session; output = None }
  else
    let cmd, rest = head_rest line in
    match String.lowercase_ascii cmd with
    | "group" | "regroup" -> (
        match parse_cols_dir rest with
        | Error msg -> Error msg
        | Ok (basis, dir) ->
            let op =
              if String.lowercase_ascii cmd = "group" then
                Op.Group { basis; dir }
              else Op.Regroup { basis; dir }
            in
            apply_op session op)
    | "ungroup" -> apply_op session Op.Ungroup
    | "order-groups" -> (
        match split_words rest with
        | [ attr ] ->
            apply_op session (Op.Order_groups { attr; dir = Grouping.Asc })
        | [ attr; d ] when Option.is_some (parse_dir d) ->
            apply_op session
              (Op.Order_groups { attr; dir = Option.get (parse_dir d) })
        | _ -> Error "order-groups: expected <aggregate-column> [asc|desc]")
    | "order" -> run_order session rest
    | "select" -> (
        match parse_pred rest with
        | Error msg -> Error msg
        | Ok pred -> apply_op session (Op.Select pred))
    | "hide" -> apply_op session (Op.Project (trim rest))
    | "show" -> apply_op session (Op.Unproject (trim rest))
    | "agg" -> run_agg session rest
    | "formula" -> run_formula session rest
    | "dedup" -> apply_op session Op.Dedup
    | "rename" -> (
        match split_words rest with
        | [ old_name; new_name ] ->
            apply_op session (Op.Rename { old_name; new_name })
        | _ -> Error "rename: expected <old> <new>")
    | "save" -> Ok { session = Session.save_as session (trim rest);
                     output = None }
    | "open" -> (
        match Session.open_sheet session (trim rest) with
        | Ok session -> Ok { session; output = None }
        | Error e -> Error (Errors.to_string e))
    | "close" ->
        if Store.close (Session.store session) (trim rest) then
          Ok { session; output = None }
        else Error (Printf.sprintf "no stored spreadsheet %S" (trim rest))
    | "load" -> (
        let path = trim rest in
        match Csv.load_relation (Csv.read_file path) with
        | rel ->
            Ok
              { session =
                  Session.load_relation session
                    ~name:(Filename.basename path) rel;
                output = None }
        | exception (Csv.Csv_error msg | Sys_error msg) -> Error msg
        | exception (Schema.Schema_error msg | Relation.Relation_error msg)
          ->
            Error msg)
    | "export" -> (
        match Persist.save (Session.current session) ~path:(trim rest) with
        | () -> Ok { session; output = Some ("saved to " ^ trim rest) }
        | exception Persist.Persist_error msg -> Error msg)
    | "import" -> (
        match Persist.load ~path:(trim rest) with
        | sheet ->
            Ok
              { session =
                  Session.push_sheet session
                    ~label:(Printf.sprintf "Import %s" (trim rest))
                    sheet;
                output = None }
        | exception Persist.Persist_error msg -> Error msg)
    | "product" -> apply_op session (Op.Product (trim rest))
    | "union" -> apply_op session (Op.Union (trim rest))
    | "except" -> apply_op session (Op.Diff (trim rest))
    | "join" -> (
        let name, after = head_rest rest in
        let after_l = String.lowercase_ascii after in
        if
          name <> ""
          && String.length after > 3
          && String.sub after_l 0 3 = "on "
        then
          let cond_text = trim (String.sub after 3 (String.length after - 3)) in
          match parse_pred cond_text with
          | Error msg -> Error msg
          | Ok cond -> apply_op session (Op.Join { stored = name; cond })
        else Error "join: expected <name> on <condition>")
    | "undo" -> (
        let n =
          match split_words rest with
          | [ n ] -> int_of_string_opt n |> Option.value ~default:1
          | _ -> 1
        in
        let session = Session.undo_many session n in
        Ok { session; output = None })
    | "goto" -> (
        match int_of_string_opt (trim rest) with
        | None -> Error "goto: expected <history-index>"
        | Some index -> (
            match Session.goto session index with
            | Some session -> Ok { session; output = None }
            | None -> Error (Printf.sprintf "no history entry %d" index)))
    | "redo" -> (
        match Session.redo session with
        | Some session -> Ok { session; output = None }
        | None -> Error "nothing to redo")
    | "history" ->
        let text =
          Session.history session
          |> List.map (fun e ->
                 Printf.sprintf "%2d. %s" e.Session.index e.Session.label)
          |> String.concat "\n"
        in
        Ok { session; output = Some text }
    | "selections" ->
        let col = trim rest in
        let text =
          Session.selections_on session col
          |> List.map (fun s ->
                 Printf.sprintf "#%d: %s" s.Query_state.id
                   (Expr.to_string s.Query_state.pred))
          |> String.concat "\n"
        in
        let text = if text = "" then "(no selections on " ^ col ^ ")" else text in
        Ok { session; output = Some text }
    | "replace" -> (
        match head_rest rest with
        | id_text, pred_text -> (
            match int_of_string_opt id_text with
            | None -> Error "replace: expected <selection-id> <predicate>"
            | Some id -> (
                match parse_pred pred_text with
                | Error msg -> Error msg
                | Ok pred -> (
                    match Session.replace_selection session ~id pred with
                    | Ok session -> Ok { session; output = None }
                    | Error e -> Error (Errors.to_string e)))))
    | "drop-select" -> (
        match int_of_string_opt (trim rest) with
        | None -> Error "drop-select: expected <selection-id>"
        | Some id -> (
            match Session.remove_selection session ~id with
            | Ok session -> Ok { session; output = None }
            | Error e -> Error (Errors.to_string e)))
    | "drop-column" -> (
        match Session.remove_computed session (trim rest) with
        | Ok session -> Ok { session; output = None }
        | Error e -> Error (Errors.to_string e))
    | "explain" when String.lowercase_ascii (trim rest) <> "analyze" ->
        let plan = Plan.of_sheet (Session.current session) in
        let optimized =
          Plan.optimize
            ~keep:(Spreadsheet.visible_columns (Session.current session))
            plan
        in
        Ok
          { session;
            output =
              Some
                ("plan:\n" ^ Plan.explain plan ^ "optimized (for visible \
                  columns):\n" ^ Plan.explain optimized) }
    | "explain" (* analyze *) ->
        (* the raw (unoptimized) plan mirrors the replay strata, so the
           root's row count equals the full materialization's *)
        let sheet = Session.current session in
        let plan = Plan.of_sheet sheet in
        let _rel, _profile, text =
          Plan.explain_analyze ~uid:sheet.Spreadsheet.uid plan
        in
        Ok { session; output = Some text }
    | "profile" -> (
        match split_words (String.lowercase_ascii rest) with
        | [] ->
            (* bare [profile] keeps its EXPLAIN ANALYZE behavior; the
               run also lands in the Sheetdoctor ring under the
               sheet's uid *)
            let sheet = Session.current session in
            let plan = Plan.of_sheet sheet in
            let _rel, _profile, text =
              Plan.explain_analyze ~uid:sheet.Spreadsheet.uid plan
            in
            Ok { session; output = Some text }
        | [ "last" ] -> (
            match Obs.Profile.last () with
            | Some r ->
                Ok { session; output = Some (Obs.Profile.render_record r) }
            | None -> Error "profile: no profiles recorded")
        | [ "json" ] ->
            Ok
              { session;
                output = Some (Obs_json.to_string (Obs.Profile.to_json ())) }
        | [ w ] -> (
            match int_of_string_opt w with
            | Some uid -> (
                match Obs.Profile.find ~uid with
                | Some r ->
                    Ok
                      { session;
                        output = Some (Obs.Profile.render_record r) }
                | None ->
                    Error (Printf.sprintf "profile: no profile for #%d" uid))
            | None -> Error "profile: expected [last|<uid>|json]")
        | _ -> Error "profile: expected [last|<uid>|json]")
    | "metrics" ->
        Ok { session; output = Some (Obs.metrics_report ()) }
    | "slo" -> (
        match split_words (String.lowercase_ascii rest) with
        | [] -> Ok { session; output = Some (Obs.Slo.render ()) }
        | [ "json" ] ->
            Ok
              { session;
                output = Some (Obs_json.to_string (Obs.Slo.to_json ())) }
        | _ -> Error "slo: expected [json]")
    | "flightrec" -> (
        match split_words (String.lowercase_ascii rest) with
        | [] -> Ok { session; output = Some (Obs.Flightrec.render ()) }
        | [ "json" ] ->
            Ok
              { session;
                output =
                  Some (Obs_json.to_string (Obs.Flightrec.to_json ())) }
        | [ "clear" ] ->
            Obs.Flightrec.clear ();
            Ok { session; output = Some "flight recorder cleared" }
        | _ -> Error "flightrec: expected [json|clear]")
    | "trace" -> (
        match split_words (String.lowercase_ascii rest), split_words rest with
        | ([] | [ "status" ]), _ ->
            let s =
              match Obs.sink () with
              | Obs.Off -> "off"
              | Obs.Logs -> "logs"
              | Obs.Memory ->
                  Printf.sprintf "memory (%d events, %d dropped)"
                    (List.length (Obs.events ()))
                    (Obs.dropped ())
            in
            Ok { session; output = Some ("tracing: " ^ s) }
        | ([ "mem" ] | [ "memory" ]), _ ->
            Obs.set_sink Obs.Memory;
            Ok { session; output = Some "tracing to in-memory ring" }
        | [ "logs" ], _ ->
            Obs.set_sink Obs.Logs;
            Ok { session; output = Some "tracing to logs" }
        | [ "off" ], _ ->
            Obs.set_sink Obs.Off;
            Ok { session; output = Some "tracing off" }
        | [ "clear" ], _ ->
            Obs.clear_events ();
            Ok { session; output = Some "trace ring cleared" }
        | [ "export"; _ ], [ _; path ] -> (
            match Obs.save_chrome_trace ~path with
            | () ->
                Ok { session; output = Some ("trace written to " ^ path) }
            | exception Sys_error msg -> Error msg)
        | _ ->
            Error "trace: expected status|mem|logs|off|clear|export <path>")
    | "html" -> (
        match Render_html.save (Session.current session) ~path:(trim rest) with
        | () -> Ok { session; output = Some ("written to " ^ trim rest) }
        | exception Sys_error msg -> Error msg)
    | "describe" ->
        Ok
          { session;
            output =
              Some
                (Profile.render
                   (Materialize.visible (Session.current session))) }
    | "tree" ->
        let max_rows = int_of_string_opt (trim rest) in
        Ok
          { session;
            output =
              Some
                (Group_tree.to_string ?max_rows
                   (Group_tree.build (Session.current session))) }
    | "print" ->
        let max_rows = int_of_string_opt (trim rest) in
        Ok
          { session;
            output = Some (Render.to_string ?max_rows (Session.current session)) }
    | "status" ->
        Ok
          { session;
            output = Some (Render.status_line (Session.current session)) }
    | other -> Error (Printf.sprintf "unknown command %S" other)

let run_general ~emit session text =
  let lines = String.split_on_char '\n' text in
  let rec go session lineno = function
    | [] -> Ok session
    | line :: rest -> (
        match run_line session line with
        | Ok { session; output } ->
            Option.iter emit output;
            go session (lineno + 1) rest
        | Error msg ->
            Error (Printf.sprintf "line %d (%s): %s" lineno (trim line) msg))
  in
  go session 1 lines

let run session text = run_general ~emit:print_endline session text
let run_silent session text = run_general ~emit:(fun _ -> ()) session text
