open Sheet_rel

type t = {
  uid : int;
  name : string;
  base_name : string;
  version : int;
  base : Relation.t;
  state : Query_state.t;
}

(* Uid allocation. The default namespace is the process-global counter
   (uids 1, 2, 3, ...). A caller may instead allocate from a numbered
   {e arena}: uids become [arena lsl arena_shift lor local], where the
   local counter is private to the arena. Arenas make per-session uid
   sequences deterministic — a server session replayed alone issues
   exactly the uids it issued under concurrent load — while staying
   collision-free across arenas (and with the default namespace, whose
   counter never plausibly reaches [1 lsl arena_shift]).

   All allocation state is guarded by one mutex. [current_arena] is a
   plain global, not thread-local: callers that use arenas must
   serialize sheet construction themselves (the Sheetserve coordinator
   lock does), which the .mli documents. *)

let arena_shift = 32
let uid_mutex = Mutex.create ()
let uid_counter = ref 0
let arena_counters : (int, int ref) Hashtbl.t = Hashtbl.create 8
let current_arena : int option ref = ref None

let with_uid_lock f =
  Mutex.lock uid_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock uid_mutex) f

let fresh_uid () =
  with_uid_lock (fun () ->
      match !current_arena with
      | None ->
          incr uid_counter;
          !uid_counter
      | Some arena ->
          let local =
            match Hashtbl.find_opt arena_counters arena with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.add arena_counters arena r;
                r
          in
          incr local;
          (arena lsl arena_shift) lor !local)

let in_uid_arena arena f =
  if arena < 1 || arena > 1 lsl 29 then
    invalid_arg "Spreadsheet.in_uid_arena: arena out of range";
  let prev = with_uid_lock (fun () ->
      let prev = !current_arena in
      current_arena := Some arena;
      prev)
  in
  Fun.protect
    ~finally:(fun () -> with_uid_lock (fun () -> current_arena := prev))
    f

let uid_arena_of uid = if uid lsr arena_shift = 0 then None else Some (uid lsr arena_shift)

let reset_uid_arena arena =
  with_uid_lock (fun () -> Hashtbl.remove arena_counters arena)

let of_relation ~name base =
  { uid = fresh_uid ();
    name;
    base_name = name;
    version = 0;
    base;
    state = Query_state.empty }

let bump t = { t with version = t.version + 1; uid = fresh_uid () }

let grouping t = t.state.Query_state.grouping

let base_schema t = Relation.schema t.base

let full_schema t =
  List.fold_left
    (fun acc (c : Computed.t) ->
      Schema.append acc { Schema.name = c.Computed.name; ty = c.Computed.ty })
    (base_schema t) t.state.Query_state.computed

let hidden_columns t = t.state.Query_state.hidden

let is_hidden t name = List.mem name (hidden_columns t)

let visible_columns t =
  List.filter (fun n -> not (is_hidden t n)) (Schema.names (full_schema t))

let visible_schema t = Schema.restrict (full_schema t) (visible_columns t)

let column_exists t name = Schema.mem (full_schema t) name

let is_computed t name =
  Option.is_some (Query_state.find_computed t.state name)

let is_aggregate_column t name =
  match Query_state.find_computed t.state name with
  | Some c -> Computed.is_aggregate c
  | None -> false

let pp ppf t =
  Format.fprintf ppf
    "@[<v>spreadsheet %S (version %d, base %s, %d rows)@ columns: %s%s@ %a@ \
     %d selection(s), %d computed, dedup=%b@]"
    t.name t.version t.base_name
    (Relation.cardinality t.base)
    (String.concat ", " (visible_columns t))
    (match hidden_columns t with
    | [] -> ""
    | h -> Printf.sprintf " (hidden: %s)" (String.concat ", " h))
    Grouping.pp (grouping t)
    (List.length t.state.Query_state.selections)
    (List.length t.state.Query_state.computed)
    t.state.Query_state.dedup
