open Sheet_rel
module Obs = Sheet_obs.Obs

let c_requests = Obs.Metrics.counter Obs.k_cache_requests
let c_hits = Obs.Metrics.counter Obs.k_cache_hits
let c_hits_subsumed = Obs.Metrics.counter Obs.k_cache_hits_subsumed
let c_misses = Obs.Metrics.counter Obs.k_cache_misses
let c_evictions = Obs.Metrics.counter Obs.k_cache_evictions
let c_seeds = Obs.Metrics.counter Obs.k_cache_seeds
let c_full_replays = Obs.Metrics.counter Obs.k_full_replays
let h_full = Obs.Histogram.histogram Obs.h_materialize_full
let h_stratum = Obs.Histogram.histogram Obs.h_materialize_stratum

let internal_error fmt =
  Printf.ksprintf (fun s -> failwith ("Materialize: internal error: " ^ s)) fmt

(* Partition the rows by equality on the columns at [positions];
   returns the groups in first-occurrence order, keyed on real row
   equality. *)
let partition positions data =
  let tbl = Row.Tbl.create (max 16 (Array.length data)) in
  let order = Vec.create () in
  Array.iter
    (fun row ->
      let key = Row.project_arr row positions in
      match Row.Tbl.find_opt tbl key with
      | Some cell -> cell := row :: !cell
      | None ->
          let cell = ref [ row ] in
          Row.Tbl.add tbl key cell;
          Vec.push order (key, cell))
    data;
  Array.to_list
    (Array.map (fun (key, cell) -> (key, List.rev !cell)) (Vec.to_array order))

(* Duplicate elimination considers the columns the user can see
   (projection removes a column from the sheet's C, Def. 6); hidden
   column values of the first occurrence survive. *)
let distinct_rows ~key_positions data =
  let seen = Row.Tbl.create (max 16 (Array.length data)) in
  Vec.filter_array
    (fun row ->
      let key = Row.project_arr row key_positions in
      if Row.Tbl.mem seen key then false
      else begin
        Row.Tbl.add seen key ();
        true
      end)
    data

let apply_selections ?rel schema preds data =
  Rel_algebra.select_rows ?rel schema preds data

(* Compute one computed column over the current rows, returning the
   cell value for each row (row order preserved). *)
let computed_cells (sheet : Spreadsheet.t) schema data (c : Computed.t) =
  match c.Computed.spec with
  | Computed.Formula e ->
      let index = Schema.compile_index schema in
      Array.map
        (fun row ->
          Expr_eval.eval ~lookup:(fun name -> Row.get row (index name)) e)
        data
  | Computed.Aggregate { fn; arg; level } ->
      let basis =
        Grouping.cumulative_basis (Spreadsheet.grouping sheet) level
      in
      let positions = Array.of_list (List.map (Schema.index_exn schema) basis) in
      let index = Schema.compile_index schema in
      let groups = Row.Tbl.create (max 16 (Array.length data)) in
      Array.iter
        (fun row ->
          let key = Row.project_arr row positions in
          match Row.Tbl.find_opt groups key with
          | Some cell -> cell := row :: !cell
          | None -> Row.Tbl.add groups key (ref [ row ]))
        data;
      let agg_of_key = Row.Tbl.create (max 16 (Row.Tbl.length groups)) in
      Row.Tbl.iter
        (fun key cell ->
          let group_rows = List.rev !cell in
          let values =
            match (fn, arg) with
            | Expr.Count_star, _ ->
                List.map (fun _ -> Value.Null) group_rows
            | _, Some e ->
                List.map
                  (fun row ->
                    Expr_eval.eval
                      ~lookup:(fun name -> Row.get row (index name))
                      e)
                  group_rows
            | _, None ->
                internal_error "aggregate %s without argument"
                  (Expr.agg_fun_name fn)
          in
          Row.Tbl.add agg_of_key key (Expr_eval.apply_agg fn values))
        groups;
      Array.map
        (fun row ->
          let key = Row.project_arr row positions in
          match Row.Tbl.find_opt agg_of_key key with
          | Some v -> v
          | None -> internal_error "group key vanished during aggregation")
        data

let unsorted_full (sheet : Spreadsheet.t) =
  let state = sheet.Spreadsheet.state in
  let base_schema = Spreadsheet.base_schema sheet in
  (* Selections per stratum (ranks depend only on the state). *)
  let stratum pred = Query_state.selection_stratum state pred in
  let preds_at k =
    List.filter_map
      (fun (s : Query_state.selection) ->
        if stratum s.Query_state.pred = k then Some s.Query_state.pred
        else None)
      state.Query_state.selections
  in
  (* row counts are O(1) on the array representation, so the stratum
     spans always carry real counts *)
  let rows =
    let sp =
      Obs.span ~uid:sheet.Spreadsheet.uid ~kind:"stratum 0"
        "materialize.stratum"
    in
    let a0 = Gc.allocated_bytes () in
    let t0 = Obs.now_ns () in
    let base_rows = Relation.to_array sheet.Spreadsheet.base in
    let rows =
      apply_selections ~rel:sheet.Spreadsheet.base base_schema (preds_at 0)
        base_rows
    in
    let rows =
      if state.Query_state.dedup then
        let visible_base =
          List.filter
            (fun n -> not (List.mem n state.Query_state.hidden))
            (Schema.names base_schema)
        in
        let key_positions =
          Array.of_list
            (List.map (Schema.index_exn base_schema) visible_base)
        in
        distinct_rows ~key_positions rows
      else rows
    in
    let dt = Obs.now_ns () - t0 in
    Obs.Histogram.record h_stratum dt;
    Obs.finish ~rows_in:(Array.length base_rows)
      ~rows_out:(Array.length rows) sp;
    Obs.Profile.note_node ~rows_in:(Array.length base_rows)
      ~rows_out:(Array.length rows) ~kind:"stratum" ~label:"stratum 0"
      ~time_ns:dt ~alloc_bytes:(Gc.allocated_bytes () -. a0) ();
    rows
  in
  let schema, rows, _ =
    List.fold_left
      (fun (schema, rows, k) (c : Computed.t) ->
        let sp =
          Obs.span ~uid:sheet.Spreadsheet.uid
            ~kind:(Printf.sprintf "stratum %d: %s" k c.Computed.name)
            "materialize.stratum"
        in
        let rows_in = Array.length rows in
        let a0 = Gc.allocated_bytes () in
        let t0 = Obs.now_ns () in
        let cells = computed_cells sheet schema rows c in
        let schema =
          Schema.append schema
            { Schema.name = c.Computed.name; ty = c.Computed.ty }
        in
        let rows = Array.map2 Row.append1 rows cells in
        let rows = apply_selections schema (preds_at k) rows in
        let dt = Obs.now_ns () - t0 in
        Obs.Histogram.record h_stratum dt;
        Obs.finish ~rows_in ~rows_out:(Array.length rows) sp;
        Obs.Profile.note_node ~rows_in ~rows_out:(Array.length rows)
          ~kind:"stratum"
          ~label:(Printf.sprintf "stratum %d: %s" k c.Computed.name)
          ~time_ns:dt ~alloc_bytes:(Gc.allocated_bytes () -. a0) ();
        (schema, rows, k + 1))
      (base_schema, rows, 1)
      state.Query_state.computed
  in
  Relation.unsafe_of_array schema rows

(* Run [f ()] inside a Sheetdoctor profile region keyed on the sheet's
   uid; when an enclosing region already covers the same uid (e.g.
   [full] reached through a [full_cached] miss) the nested enter is
   collapsed so one request yields one record. *)
let profiled ~uid f =
  Obs.Profile.enter ~kind:"materialize" ~uid;
  match f () with
  | rel ->
      Obs.Profile.commit ~rows_out:(Relation.cardinality rel);
      rel
  | exception e ->
      Obs.Profile.commit ~rows_out:(-1);
      raise e

let full (sheet : Spreadsheet.t) =
  Obs.Metrics.incr c_full_replays;
  profiled ~uid:sheet.Spreadsheet.uid @@ fun () ->
  Obs.Profile.note_strategy "full-replay";
  Obs.with_span ~uid:sheet.Spreadsheet.uid ~kind:"full" "materialize.full"
    (fun () ->
      let t0 = Obs.now_ns () in
      Fun.protect
        ~finally:(fun () -> Obs.Histogram.record h_full (Obs.now_ns () - t0))
      @@ fun () ->
      let rel = unsorted_full sheet in
      let keys =
        List.map
          (fun (attr, dir) ->
            ( attr,
              match dir with Grouping.Asc -> `Asc | Grouping.Desc -> `Desc ))
          (Grouping.sort_keys (Spreadsheet.grouping sheet))
      in
      if keys = [] then rel
      else
        Obs.with_span ~uid:sheet.Spreadsheet.uid ~kind:"sort"
          "materialize.sort" (fun () ->
            let a0 = Gc.allocated_bytes () in
            let t0 = Obs.now_ns () in
            let sorted = Rel_algebra.sort keys rel in
            Obs.Profile.note_node ~rows_in:(Relation.cardinality rel)
              ~rows_out:(Relation.cardinality sorted) ~kind:"sort"
              ~label:
                (Printf.sprintf "sort [%s]"
                   (String.concat ", " (List.map fst keys)))
              ~time_ns:(Obs.now_ns () - t0)
              ~alloc_bytes:(Gc.allocated_bytes () -. a0) ();
            sorted))

(* ---------- the materialization cache ----------

   One process-global table keyed by sheet uid, shared by
   [full_cached] (fill on miss) and [seed_cache] (externally derived
   fills, see Incremental). Sheets are immutable and every engine op
   bumps the uid, so entries can never go stale; the only lifecycle
   events are oldest-half eviction past [cache_limit] and explicit
   [reset_cache]. The stats below are local to this table (reset
   together with it), independent of the Sheet_obs registry, so tests
   can observe the cache deterministically.

   Each entry keeps the sheet alongside its materialization, which
   makes the cache {e semantic}: a miss first scans the cached states
   for one that {!State_subsume.check} proves subsumes the request
   (same base relation — compared physically, since engine-derived
   sheets share it — same computed columns, a provably weaker
   selection) and answers by re-filtering/re-sorting the cached rows
   instead of replaying the base data. Exact hits, subsumed hits and
   misses are recorded distinctly, both in {!cache_stats} and through
   the Sheet_obs counters and flight recorder. *)

type entry = { e_sheet : Spreadsheet.t; e_rel : Relation.t }

(* One mutex linearizes every cache operation: Sheetserve handler
   threads (and the concurrency tests) call [full_cached] from many
   threads at once, and the lock is what keeps the hit-kind accounting
   exact (requests = exact + subsumed + miss) and the table free of
   torn states. It is held across the full replay on a miss, which
   also keeps the single-writer telemetry underneath (profile regions,
   span nesting) sequential. Never call back into this module while
   holding it — the lock is not reentrant. *)
let cache_mutex = Mutex.create ()

let with_cache_lock f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let cache : (int, entry) Hashtbl.t = Hashtbl.create 64

(* Insertion order of uids; uids are never reused, so a uid appears at
   most once and stays valid until evicted with its entry. *)
let cache_order : int Queue.t = Queue.create ()

let cache_limit = 512

(* A miss scans cached entries oldest-first for a subsumer, but gives
   up after this many full solver checks (cheap structural prechecks
   are unbounded) so a pathological cache cannot stall lookups. *)
let scan_budget = 32

type cache_stats = {
  requests : int;
  hits : int;
  subsumed_hits : int;
  misses : int;
  seeds : int;
  evictions : int;
  entries : int;
}

let requests = ref 0
let hits = ref 0
let subsumed_hits = ref 0
let misses = ref 0
let seeds = ref 0
let evictions = ref 0

let cache_stats () =
  with_cache_lock (fun () ->
      { requests = !requests;
        hits = !hits;
        subsumed_hits = !subsumed_hits;
        misses = !misses;
        seeds = !seeds;
        evictions = !evictions;
        entries = Hashtbl.length cache })

let reset_cache () =
  with_cache_lock (fun () ->
      Hashtbl.reset cache;
      Queue.clear cache_order;
      requests := 0;
      hits := 0;
      subsumed_hits := 0;
      misses := 0;
      seeds := 0;
      evictions := 0)

let cache_insert (sheet : Spreadsheet.t) rel =
  let uid = sheet.Spreadsheet.uid in
  if not (Hashtbl.mem cache uid) then Queue.push uid cache_order;
  Hashtbl.replace cache uid { e_sheet = sheet; e_rel = rel }

(* Evict the oldest half, so a hot subsumer is not thrown away with
   the cold tail. *)
let evict_if_over_limit () =
  let n = Hashtbl.length cache in
  if n > cache_limit then begin
    let target = n / 2 in
    let removed = ref 0 in
    while !removed < target && not (Queue.is_empty cache_order) do
      let uid = Queue.pop cache_order in
      if Hashtbl.mem cache uid then begin
        Hashtbl.remove cache uid;
        incr removed
      end
    done;
    incr evictions;
    Obs.Metrics.incr c_evictions;
    Obs.Flightrec.record ~kind:"cache-eviction"
      (Printf.sprintf "oldest half, %d of %d entries" !removed n)
  end

(* Order safety: the subsumed path answers by re-sorting the cached
   rows, and a stable sort leaves ties in the input's order — so the
   served row order reproduces a full replay's (ties in base order)
   only when the cached entry's sort keys are a prefix of the
   candidate's (empty and equal included). Anything else would leak
   the subsumer's tie arrangement into the answer, making the visible
   order depend on what happens to be cached — under Sheetserve's
   shared cache, on other sessions' timing. Such entries are skipped;
   the request simply falls through to the next candidate or a miss. *)
let keys_prefix shorter longer =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | (a : string * Grouping.dir) :: xs, b :: ys -> a = b && go (xs, ys)
  in
  go (shorter, longer)

(* Scan for a cached state proven to subsume [sheet]'s. Oldest-first
   keeps the answer deterministic; the structural prechecks (same base
   relation, physically; order-safe sort keys; a selection the entry
   does not trivially fail) are cheap, and only candidates that pass
   them spend solver budget. *)
let find_subsumer (sheet : Spreadsheet.t) =
  let candidate_keys = Grouping.sort_keys (Spreadsheet.grouping sheet) in
  let type_of = Schema.type_of (Spreadsheet.full_schema sheet) in
  let budget = ref scan_budget in
  let found = ref None in
  (try
     Queue.iter
       (fun uid ->
         match Hashtbl.find_opt cache uid with
         | None -> ()
         | Some entry ->
             if
               uid <> sheet.Spreadsheet.uid
               && entry.e_sheet.Spreadsheet.base == sheet.Spreadsheet.base
               && keys_prefix
                    (Grouping.sort_keys
                       (Spreadsheet.grouping entry.e_sheet))
                    candidate_keys
             then begin
               if !budget <= 0 then raise Exit;
               decr budget;
               match
                 State_subsume.check ~type_of
                   ~candidate:sheet.Spreadsheet.state
                   ~cached:entry.e_sheet.Spreadsheet.state
               with
               | State_subsume.Incomparable _ -> ()
               | outcome ->
                   found := Some (entry, outcome);
                   raise Exit
             end)
       cache_order
   with Exit -> ());
  !found

(* Answer [sheet] from a subsuming entry: keep only the rows passing
   [sheet]'s own selections (sound because State_subsume guaranteed
   identical schemas, computed cells and dedup survivors), then
   re-sort for [sheet]'s grouping/ordering. *)
let serve_subsumed (sheet : Spreadsheet.t) (cached_rel : Relation.t) =
  let schema = Relation.schema cached_rel in
  let preds =
    List.map
      (fun (s : Query_state.selection) -> s.Query_state.pred)
      sheet.Spreadsheet.state.Query_state.selections
  in
  let rows =
    apply_selections ~rel:cached_rel schema preds
      (Relation.to_array cached_rel)
  in
  let rel = Relation.unsafe_of_array schema rows in
  let keys =
    List.map
      (fun (attr, dir) ->
        (attr, match dir with Grouping.Asc -> `Asc | Grouping.Desc -> `Desc))
      (Grouping.sort_keys (Spreadsheet.grouping sheet))
  in
  if keys = [] then rel else Rel_algebra.sort keys rel

let full_cached (sheet : Spreadsheet.t) =
  with_cache_lock @@ fun () ->
  incr requests;
  Obs.Metrics.incr c_requests;
  profiled ~uid:sheet.Spreadsheet.uid @@ fun () ->
  match Hashtbl.find_opt cache sheet.Spreadsheet.uid with
  | Some entry ->
      incr hits;
      Obs.Metrics.incr c_hits;
      Obs.Profile.note_cache "exact";
      Obs.Flightrec.record ~uid:sheet.Spreadsheet.uid ~kind:"cache-hit-exact"
        "materialize";
      entry.e_rel
  | None -> (
      match find_subsumer sheet with
      | Some (entry, outcome) ->
          incr subsumed_hits;
          Obs.Metrics.incr c_hits_subsumed;
          Obs.Profile.note_cache "subsumed";
          let t0 = Obs.now_ns () in
          let rel = serve_subsumed sheet entry.e_rel in
          Obs.Flightrec.record ~uid:sheet.Spreadsheet.uid
            ~dur_ns:(Obs.now_ns () - t0) ~kind:"cache-hit-subsumed"
            (Printf.sprintf "from sheet #%d: %s"
               entry.e_sheet.Spreadsheet.uid
               (State_subsume.describe outcome));
          evict_if_over_limit ();
          cache_insert sheet rel;
          rel
      | None ->
          incr misses;
          Obs.Metrics.incr c_misses;
          Obs.Profile.note_cache "miss";
          evict_if_over_limit ();
          let t0 = Obs.now_ns () in
          let rel = full sheet in
          Obs.Flightrec.record ~uid:sheet.Spreadsheet.uid
            ~dur_ns:(Obs.now_ns () - t0) ~kind:"cache-miss" "full replay";
          cache_insert sheet rel;
          rel)

let seed_cache (sheet : Spreadsheet.t) rel =
  with_cache_lock (fun () ->
      incr seeds;
      Obs.Metrics.incr c_seeds;
      Obs.Profile.note_cache "seed";
      evict_if_over_limit ();
      cache_insert sheet rel)

let visible (sheet : Spreadsheet.t) =
  Rel_algebra.project (Spreadsheet.visible_columns sheet)
    (full_cached sheet)

let current_base_rows (sheet : Spreadsheet.t) =
  Rel_algebra.project
    (Schema.names (Spreadsheet.base_schema sheet))
    (unsorted_full sheet)

let finest_group_boundaries (sheet : Spreadsheet.t) (rel : Relation.t) =
  let grouping = Spreadsheet.grouping sheet in
  if grouping.Grouping.levels = [] then []
  else
    let basis = Grouping.finest_basis grouping in
    let positions =
      Array.of_list
        (List.map (Schema.index_exn (Relation.schema rel)) basis)
    in
    let rows = Relation.to_array rel in
    let n = Array.length rows in
    let out = ref [] in
    for i = 0 to n - 2 do
      let ki = Row.project_arr rows.(i) positions in
      let kj = Row.project_arr rows.(i + 1) positions in
      if not (Row.equal ki kj) then out := i :: !out
    done;
    List.rev !out

let group_count (sheet : Spreadsheet.t) ~level =
  let rel = unsorted_full sheet in
  let basis = Grouping.cumulative_basis (Spreadsheet.grouping sheet) level in
  let positions =
    Array.of_list (List.map (Schema.index_exn (Relation.schema rel)) basis)
  in
  List.length (partition positions (Relation.to_array rel))
