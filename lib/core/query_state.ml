open Sheet_rel

type selection = { id : int; pred : Expr.t }

type t = {
  selections : selection list;
  hidden : string list;
  computed : Computed.t list;
  dedup : bool;
  grouping : Grouping.t;
}

let empty =
  { selections = [];
    hidden = [];
    computed = [];
    dedup = false;
    grouping = Grouping.empty }

let add_selection t pred =
  let id =
    1 + List.fold_left (fun acc s -> max acc s.id) 0 t.selections
  in
  let sel = { id; pred } in
  ({ t with selections = t.selections @ [ sel ] }, sel)

let find_selection t id = List.find_opt (fun s -> s.id = id) t.selections

let remove_selection t id =
  if Option.is_none (find_selection t id) then
    Error (Printf.sprintf "no selection #%d" id)
  else Ok { t with selections = List.filter (fun s -> s.id <> id) t.selections }

let replace_selection t id pred =
  if Option.is_none (find_selection t id) then
    Error (Printf.sprintf "no selection #%d" id)
  else
    Ok
      { t with
        selections =
          List.map
            (fun s -> if s.id = id then { s with pred } else s)
            t.selections }

let selections_on t col =
  List.filter (fun s -> List.mem col (Expr.columns s.pred)) t.selections

let add_computed t c = { t with computed = t.computed @ [ c ] }

let find_computed t name =
  List.find_opt (fun c -> c.Computed.name = name) t.computed

let remove_computed t name =
  { t with
    computed = List.filter (fun c -> c.Computed.name <> name) t.computed }

let computed_rank t name =
  let rec go k = function
    | [] -> 0
    | c :: rest -> if c.Computed.name = name then k else go (k + 1) rest
  in
  go 1 t.computed

let selection_stratum t pred =
  List.fold_left
    (fun acc col -> max acc (computed_rank t col))
    0 (Expr.columns pred)

let column_dependents t col =
  let from_selections =
    List.filter_map
      (fun s ->
        if List.mem col (Expr.columns s.pred) then
          Some
            (Printf.sprintf "selection #%d (%s)" s.id
               (Expr.to_string s.pred))
        else None)
      t.selections
  in
  let from_computed =
    List.filter_map
      (fun c ->
        if List.mem col (Computed.referenced_columns c) then
          Some (Computed.describe c)
        else None)
      t.computed
  in
  from_selections @ from_computed

let referenced_columns t =
  let of_selections =
    List.concat_map (fun s -> Expr.columns s.pred) t.selections
  and of_computed =
    List.concat_map Computed.referenced_columns t.computed
  and of_grouping =
    Grouping.all_group_attrs t.grouping
    @ Grouping.group_order_columns t.grouping
    @ List.map fst t.grouping.Grouping.leaf_order
  in
  List.sort_uniq String.compare (of_selections @ of_computed @ of_grouping)

let aggregates_broken_by_grouping_change t ~surviving_levels =
  List.filter
    (fun c ->
      match c.Computed.spec with
      | Computed.Aggregate { level; _ } -> level > surviving_levels
      | Computed.Formula _ -> false)
    t.computed

let depends_on_aggregate t col =
  let rec is_aggregate_dep name seen =
    if List.mem name seen then false
    else
      match find_computed t name with
      | None -> false
      | Some c -> (
          match c.Computed.spec with
          | Computed.Aggregate _ -> true
          | Computed.Formula _ ->
              List.exists
                (fun ref_col -> is_aggregate_dep ref_col (name :: seen))
                (Computed.referenced_columns c))
  in
  is_aggregate_dep col []

let rename_column t ~old_name ~new_name =
  let ren a = if a = old_name then new_name else a in
  let ren_expr e = Expr.map_columns ren e in
  { selections =
      List.map (fun s -> { s with pred = ren_expr s.pred }) t.selections;
    hidden = List.map ren t.hidden;
    computed = List.map (fun c -> Computed.rename_refs c ~old_name ~new_name)
        t.computed;
    dedup = t.dedup;
    grouping = Grouping.rename t.grouping ~old_name ~new_name }

let set_grouping t grouping = { t with grouping }
