open Sheet_rel
module Obs = Sheet_obs.Obs

let c_ops = Obs.Metrics.counter Obs.k_engine_ops
let c_errors = Obs.Metrics.counter Obs.k_engine_errors

let ( let* ) = Result.bind

let check_visible_pred sheet pred =
  match Expr_check.check_pred (Spreadsheet.visible_schema sheet) pred with
  | Ok () -> Ok ()
  | Error msg -> Errors.fail_type "%s" msg

let update_state sheet state =
  Spreadsheet.bump { sheet with Spreadsheet.state }

(* ---- unary data manipulation ---- *)

let select sheet pred =
  if Expr.has_agg pred then
    Errors.fail_invalid
      "selection predicates cannot contain aggregate calls; create an \
       aggregation column first, then select on it"
  else
    let* () = check_visible_pred sheet pred in
    let state, _sel = Query_state.add_selection sheet.Spreadsheet.state pred in
    Ok (update_state sheet state)

let project sheet col =
  if not (Spreadsheet.column_exists sheet col) then
    Error (Errors.Unknown_column col)
  else if Spreadsheet.is_hidden sheet col then
    Errors.fail_invalid "column %S is already hidden" col
  else
    let state = sheet.Spreadsheet.state in
    let state =
      { state with Query_state.hidden = state.Query_state.hidden @ [ col ] }
    in
    Ok (update_state sheet state)

let unproject sheet col =
  if not (Spreadsheet.is_hidden sheet col) then
    Errors.fail_invalid "column %S is not hidden" col
  else
    let state = sheet.Spreadsheet.state in
    let state =
      { state with
        Query_state.hidden =
          List.filter (fun c -> c <> col) state.Query_state.hidden }
    in
    Ok (update_state sheet state)

let dedup sheet =
  let state = sheet.Spreadsheet.state in
  if state.Query_state.dedup then Ok (Spreadsheet.bump sheet)
  else Ok (update_state sheet { state with Query_state.dedup = true })

(* ---- data organization ---- *)

let check_group_attrs sheet basis =
  let rec go = function
    | [] -> Ok ()
    | a :: rest ->
        if not (Spreadsheet.column_exists sheet a) then
          Error (Errors.Unknown_column a)
        else if Spreadsheet.is_hidden sheet a then
          Errors.fail_invalid "cannot group by hidden column %S" a
        else if Query_state.depends_on_aggregate sheet.Spreadsheet.state a
        then
          Errors.fail_grouping
            "cannot group by %S: it depends on an aggregate, which would \
             be circular"
            a
        else go rest
  in
  go basis

let group sheet ~basis ~dir =
  let* () = check_group_attrs sheet basis in
  let grouping = Spreadsheet.grouping sheet in
  let finest = Grouping.finest_basis grouping in
  let full_basis =
    finest @ List.filter (fun a -> not (List.mem a finest)) basis
  in
  match Grouping.add_level grouping ~basis:full_basis ~dir with
  | Error msg -> Errors.fail_grouping "%s" msg
  | Ok grouping ->
      Ok
        (update_state sheet
           (Query_state.set_grouping sheet.Spreadsheet.state grouping))

let guard_surviving_levels sheet ~surviving_levels ~what =
  match
    Query_state.aggregates_broken_by_grouping_change
      sheet.Spreadsheet.state ~surviving_levels
  with
  | [] -> Ok ()
  | broken ->
      Errors.fail_dependency
        "%s would destroy grouping levels that aggregate column(s) %s \
         depend on; project out those aggregates first"
        what
        (String.concat ", "
           (List.map (fun c -> c.Computed.name) broken))

let regroup sheet ~basis ~dir =
  let* () = guard_surviving_levels sheet ~surviving_levels:1
      ~what:"regrouping" in
  let* () = check_group_attrs sheet basis in
  match Grouping.add_level Grouping.empty ~basis ~dir with
  | Error msg -> Errors.fail_grouping "%s" msg
  | Ok grouping ->
      let grouping =
        { grouping with
          Grouping.leaf_order =
            List.filter
              (fun (a, _) -> not (List.mem a basis))
              (Spreadsheet.grouping sheet).Grouping.leaf_order }
      in
      Ok
        (update_state sheet
           (Query_state.set_grouping sheet.Spreadsheet.state grouping))

let ungroup sheet =
  let* () = guard_surviving_levels sheet ~surviving_levels:1
      ~what:"removing the grouping" in
  let grouping = Grouping.ungroup (Spreadsheet.grouping sheet) in
  Ok
    (update_state sheet
       (Query_state.set_grouping sheet.Spreadsheet.state grouping))

let order sheet ~attr ~dir ~level =
  if not (Spreadsheet.column_exists sheet attr) then
    Error (Errors.Unknown_column attr)
  else if Spreadsheet.is_hidden sheet attr then
    Errors.fail_invalid "cannot order by hidden column %S" attr
  else
    let grouping = Spreadsheet.grouping sheet in
    match Grouping.order grouping ~attr ~dir ~level with
    | Error msg -> Errors.fail_grouping "%s" msg
    | Ok outcome ->
        let* () =
          match outcome.Grouping.destroyed_from with
          | None -> Ok ()
          | Some l ->
              guard_surviving_levels sheet ~surviving_levels:l
                ~what:(Printf.sprintf "ordering by %S at level %d" attr level)
        in
        Ok
          (update_state sheet
             (Query_state.set_grouping sheet.Spreadsheet.state
                outcome.Grouping.spec))

(* Extension: order the groups at an aggregate's own level by the
   aggregate's value. The aggregate is constant within each group at
   its level, so the resulting flat sort keeps groups contiguous. *)
let order_groups sheet ~attr ~dir =
  match Query_state.find_computed sheet.Spreadsheet.state attr with
  | Some { Computed.spec = Computed.Aggregate { level; _ }; _ } ->
      if level < 2 then
        Errors.fail_grouping
          "%S aggregates the whole sheet; there are no sibling groups            to order"
          attr
      else (
        match
          Grouping.set_group_order (Spreadsheet.grouping sheet) ~level
            ~by:attr ~dir
        with
        | Ok grouping ->
            Ok
              (update_state sheet
                 (Query_state.set_grouping sheet.Spreadsheet.state grouping))
        | Error msg -> Errors.fail_grouping "%s" msg)
  | Some _ ->
      Errors.fail_invalid
        "%S is not an aggregation column; ordering groups by value          requires one"
        attr
  | None ->
      if Spreadsheet.column_exists sheet attr then
        Errors.fail_invalid
          "%S is not an aggregation column; ordering groups by value            requires one"
          attr
      else Error (Errors.Unknown_column attr)

(* ---- computed columns ---- *)

let capitalize_fn fn =
  String.capitalize_ascii (Expr.agg_fun_name fn)

let aggregate_default_name fn col =
  match (fn, col) with
  | Expr.Count_star, _ -> "Count"
  | _, Some c -> Printf.sprintf "%s_%s" (capitalize_fn fn) c
  | _, None -> capitalize_fn fn

let fresh_column_name sheet base =
  let schema = Spreadsheet.full_schema sheet in
  if not (Schema.mem schema base) then base
  else
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if Schema.mem schema cand then go (i + 1) else cand
    in
    go 2

let aggregate sheet ~fn ~col ~level ~as_name =
  let grouping = Spreadsheet.grouping sheet in
  let n = Grouping.num_levels grouping in
  if level < 1 || level > n then
    Errors.fail_grouping "aggregation group level %d out of range 1..%d"
      level n
  else
    let arg =
      match (fn, col) with
      | Expr.Count_star, _ -> Ok None
      | _, Some c ->
          if not (Spreadsheet.column_exists sheet c) then
            Error (Errors.Unknown_column c)
          else if Spreadsheet.is_hidden sheet c then
            Errors.fail_invalid "cannot aggregate hidden column %S" c
          else Ok (Some (Expr.Col c))
      | _, None ->
          Errors.fail_invalid "aggregate %s needs a column"
            (Expr.agg_fun_name fn)
    in
    let* arg = arg in
    let* ty =
      match
        Expr_check.check ~allow_agg:true
          (Spreadsheet.visible_schema sheet)
          (Expr.Agg (fn, arg))
      with
      | Ok (Some ty) -> Ok ty
      | Ok None -> Ok Value.TString
      | Error msg -> Errors.fail_type "%s" msg
    in
    let name =
      fresh_column_name sheet
        (match as_name with
        | Some n -> n
        | None -> aggregate_default_name fn col)
    in
    let computed =
      { Computed.name; ty; spec = Computed.Aggregate { fn; arg; level } }
    in
    Ok
      (update_state sheet
         (Query_state.add_computed sheet.Spreadsheet.state computed))

let formula sheet ~name ~expr =
  if Expr.has_agg expr then
    Errors.fail_invalid
      "formulas cannot contain aggregate calls; use Aggregation instead"
  else
    let* ty =
      match Expr_check.check (Spreadsheet.visible_schema sheet) expr with
      | Ok (Some ty) -> Ok ty
      | Ok None -> Ok Value.TString
      | Error msg -> Errors.fail_type "%s" msg
    in
    let base_name =
      match name with
      | Some n -> n
      | None ->
          Printf.sprintf "F%d"
            (1 + List.length sheet.Spreadsheet.state.Query_state.computed)
    in
    let col_name = fresh_column_name sheet base_name in
    let computed = { Computed.name = col_name; ty; spec = Computed.Formula expr } in
    Ok
      (update_state sheet
         (Query_state.add_computed sheet.Spreadsheet.state computed))

(* ---- housekeeping ---- *)

let rename sheet ~old_name ~new_name =
  if not (Spreadsheet.column_exists sheet old_name) then
    Error (Errors.Unknown_column old_name)
  else if old_name <> new_name && Spreadsheet.column_exists sheet new_name
  then Errors.fail_invalid "column %S already exists" new_name
  else
    let base =
      if Schema.mem (Spreadsheet.base_schema sheet) old_name then
        (* zero-copy: same row array under the renamed schema *)
        Relation.with_schema
          (Schema.rename (Spreadsheet.base_schema sheet) old_name new_name)
          sheet.Spreadsheet.base
      else sheet.Spreadsheet.base
    in
    let state =
      Query_state.rename_column sheet.Spreadsheet.state ~old_name ~new_name
    in
    Ok (Spreadsheet.bump { sheet with Spreadsheet.base; state })

(* ---- binary operators (points of non-commutativity) ---- *)

let resolve_stored store name =
  match store with
  | None -> Errors.fail_invalid "no spreadsheet store available"
  | Some st -> (
      match Store.open_ st name with
      | Some sheet -> Ok sheet
      | None -> Error (Errors.No_such_sheet name))

(* Rebase the current sheet on a freshly combined relation: accumulated
   selections and DE are baked into the data; computed definitions and
   grouping survive and recompute (Defs. 7-10). Hidden columns do not
   cross a point of non-commutativity: binary operators act on the
   sheet's column list C, from which projection removed them. *)
let rebase sheet ~base ~base_name =
  let state = sheet.Spreadsheet.state in
  let state =
    { Query_state.selections = [];
      hidden = [];
      computed = state.Query_state.computed;
      dedup = false;
      grouping = state.Query_state.grouping }
  in
  Spreadsheet.bump { sheet with Spreadsheet.base; base_name; state }

(* The relation a binary operator sees for one operand: the current
   rows (selections and DE applied) restricted to the visible base
   columns. Hidden columns that the grouping, ordering or a computed
   column still needs must be restored first — they would silently
   vanish in the result otherwise. *)
let binary_operand sheet =
  let hidden = Spreadsheet.hidden_columns sheet in
  let state = sheet.Spreadsheet.state in
  let grouping = Spreadsheet.grouping sheet in
  let needed_hidden =
    List.filter
      (fun h ->
        Grouping.is_group_attr grouping h
        || List.mem_assoc h grouping.Grouping.leaf_order
        || List.exists
             (fun c -> List.mem h (Computed.referenced_columns c))
             state.Query_state.computed)
      hidden
  in
  match needed_hidden with
  | _ :: _ ->
      Errors.fail_dependency
        "hidden column(s) %s are still used by the grouping, ordering or \
         a computed column; restore or release them before a binary \
         operator"
        (String.concat ", " needed_hidden)
  | [] ->
      let visible_base =
        List.filter
          (fun n -> not (List.mem n hidden))
          (Schema.names (Spreadsheet.base_schema sheet))
      in
      Ok
        (Rel_algebra.project visible_base
           (Materialize.current_base_rows sheet))

let product ?store sheet stored_name =
  let* stored = resolve_stored store stored_name in
  let* left = binary_operand sheet in
  let* right = binary_operand stored in
  let schema, _mapping =
    Schema.concat_with_mapping (Relation.schema left) (Relation.schema right)
  in
  let da = Relation.to_array left and db = Relation.to_array right in
  let na = Array.length da and nb = Array.length db in
  let base =
    if na = 0 || nb = 0 then Relation.empty schema
    else begin
      let out = Array.make (na * nb) da.(0) in
      for i = 0 to na - 1 do
        let ra = da.(i) in
        let off = i * nb in
        for j = 0 to nb - 1 do
          out.(off + j) <- Row.append ra db.(j)
        done
      done;
      Relation.unsafe_of_array schema out
    end
  in
  Ok
    (rebase sheet ~base
       ~base_name:
         (Printf.sprintf "%s x %s" sheet.Spreadsheet.base_name stored_name))

let join ?store sheet stored_name cond =
  let* product_sheet = product ?store sheet stored_name in
  if Expr.has_agg cond then
    Errors.fail_invalid "join conditions cannot contain aggregate calls"
  else
    match
      Expr_check.check_pred
        (Spreadsheet.base_schema product_sheet)
        cond
    with
    | Error msg -> Errors.fail_type "join condition: %s" msg
    | Ok () ->
        let base =
          Rel_algebra.select cond product_sheet.Spreadsheet.base
        in
        Ok
          (Spreadsheet.bump
             { product_sheet with
               Spreadsheet.base;
               base_name =
                 Printf.sprintf "%s join %s" sheet.Spreadsheet.base_name
                   stored_name })

let set_op ?store sheet stored_name ~which =
  let* stored = resolve_stored store stored_name in
  let* left = binary_operand sheet in
  let* right = binary_operand stored in
  if
    not
      (Schema.union_compatible (Relation.schema left) (Relation.schema right))
  then
    Error
      (Errors.Incompatible_schemas
         (Printf.sprintf
            "%s requires both spreadsheets to have the same base columns"
            (match which with `Union -> "union" | `Diff -> "difference")))
  else
    let base =
      match which with
      | `Union -> Rel_algebra.union left right
      | `Diff -> Rel_algebra.diff left right
    in
    let opname = match which with `Union -> "+" | `Diff -> "-" in
    Ok
      (rebase sheet ~base
         ~base_name:
           (Printf.sprintf "%s %s %s" sheet.Spreadsheet.base_name opname
              stored_name))

(* ---- dispatch ---- *)

let dispatch ?store sheet (op : Op.t) =
  match op with
  | Op.Group { basis; dir } -> group sheet ~basis ~dir
  | Op.Regroup { basis; dir } -> regroup sheet ~basis ~dir
  | Op.Ungroup -> ungroup sheet
  | Op.Order { attr; dir; level } -> order sheet ~attr ~dir ~level
  | Op.Order_groups { attr; dir } -> order_groups sheet ~attr ~dir
  | Op.Select pred -> select sheet pred
  | Op.Project col -> project sheet col
  | Op.Unproject col -> unproject sheet col
  | Op.Product name -> product ?store sheet name
  | Op.Union name -> set_op ?store sheet name ~which:`Union
  | Op.Diff name -> set_op ?store sheet name ~which:`Diff
  | Op.Join { stored; cond } -> join ?store sheet stored cond
  | Op.Aggregate { fn; col; level; as_name } ->
      aggregate sheet ~fn ~col ~level ~as_name
  | Op.Formula { name; expr } -> formula sheet ~name ~expr
  | Op.Dedup -> dedup sheet
  | Op.Rename { old_name; new_name } -> rename sheet ~old_name ~new_name

let h_apply = Obs.Histogram.histogram Obs.h_engine_apply

let apply ?store sheet (op : Op.t) =
  Obs.Metrics.incr c_ops;
  let sp =
    Obs.span ~uid:sheet.Spreadsheet.uid ~kind:(Op.kind op) "engine.apply"
  in
  let t0 = Obs.now_ns () in
  let result = dispatch ?store sheet op in
  let dt = Obs.now_ns () - t0 in
  Obs.Histogram.record h_apply dt;
  Obs.Histogram.record
    (Obs.Histogram.histogram (Obs.h_engine_apply ^ "." ^ Op.kind op))
    dt;
  (let labels = Obs.ambient_labels () in
   if not (Obs.Labels.is_empty labels) then
     Obs.Histogram.record
       (Obs.Histogram.histogram_labeled Obs.h_engine_apply labels)
       dt);
  (match result with Error _ -> Obs.Metrics.incr c_errors | Ok _ -> ());
  Obs.finish sp;
  result

(* ---- query modification ---- *)

let remove_selection sheet id =
  match Query_state.remove_selection sheet.Spreadsheet.state id with
  | Ok state -> Ok (update_state sheet state)
  | Error msg -> Errors.fail_invalid "%s" msg

let replace_selection sheet id pred =
  if Expr.has_agg pred then
    Errors.fail_invalid "selection predicates cannot contain aggregate calls"
  else
    (* The replacement predicate must be valid against the schema the
       original selection saw; checking against the visible schema
       keeps the direct-manipulation invariant. *)
    let* () = check_visible_pred sheet pred in
    match Query_state.replace_selection sheet.Spreadsheet.state id pred with
    | Ok state -> Ok (update_state sheet state)
    | Error msg -> Errors.fail_invalid "%s" msg

let remove_computed sheet name =
  match Query_state.find_computed sheet.Spreadsheet.state name with
  | None -> Error (Errors.Unknown_column name)
  | Some _ -> (
      match Query_state.column_dependents sheet.Spreadsheet.state name with
      | _ :: _ as deps ->
          Errors.fail_dependency
            "cannot remove %S: depended on by %s" name
            (String.concat "; " deps)
      | [] ->
          let grouping = Spreadsheet.grouping sheet in
          if Grouping.is_group_attr grouping name then
            Errors.fail_dependency
              "cannot remove %S: the grouping uses it" name
          else if List.mem name (Grouping.group_order_columns grouping) then
            Errors.fail_dependency
              "cannot remove %S: groups are ordered by it" name
          else if List.mem_assoc name grouping.Grouping.leaf_order then
            Errors.fail_dependency
              "cannot remove %S: the ordering uses it" name
          else
            let state =
              Query_state.remove_computed sheet.Spreadsheet.state name
            in
            let state =
              { state with
                Query_state.hidden =
                  List.filter (fun c -> c <> name) state.Query_state.hidden }
            in
            Ok (update_state sheet state))

let selections_on sheet col =
  Query_state.selections_on sheet.Spreadsheet.state col
