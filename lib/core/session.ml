open Sheet_rel
module Obs = Sheet_obs.Obs

let g_undo = Obs.Metrics.gauge Obs.k_undo_depth
let g_redo = Obs.Metrics.gauge Obs.k_redo_depth

type entry = { index : int; label : string }

type snapshot = { sheet : Spreadsheet.t; label : string }

type t = {
  past : snapshot list;  (** most recent first; head is the current state *)
  future : snapshot list;  (** undone snapshots, most recently undone first *)
  sheets : Store.t;
}

let create ~name rel =
  { past =
      [ { sheet = Spreadsheet.of_relation ~name rel;
          label = Printf.sprintf "Load %s" name } ];
    future = [];
    sheets = Store.create () }

let head t =
  match t.past with
  | s :: _ -> s
  | [] -> assert false (* invariant: past is never empty *)

let current t = (head t).sheet
let store t = t.sheets

(* The registry holds one pair of depth gauges; they track whichever
   session moved last (sessions are plain values, so there may be
   several — shells have exactly one). *)
let observe t =
  Obs.Metrics.set g_undo (List.length t.past - 1);
  Obs.Metrics.set g_redo (List.length t.future);
  t

let push t label sheet =
  observe { t with past = { sheet; label } :: t.past; future = [] }

let apply t op =
  let t0 = Obs.now_ns () in
  match Engine.apply ~store:t.sheets (current t) op with
  | Ok sheet ->
      (* Derive the new materialization incrementally where the
         operator permits, seeding the cache so the redisplay after
         this step is immediate (Sec. V's cost argument). *)
      ignore (Incremental.materialize_after ~parent:(current t) ~op
                ~child:sheet);
      let dur_ns = Obs.now_ns () - t0 in
      let uid = sheet.Spreadsheet.uid in
      Obs.Flightrec.record ~uid ~dur_ns ~kind:"op" (Op.describe op);
      if dur_ns >= Obs.Flightrec.slow_threshold_ns () then
        Obs.Flightrec.record ~uid ~dur_ns ~kind:"slow-op" (Op.describe op);
      Ok (push t (Op.describe op) sheet)
  | Error e ->
      Obs.Flightrec.record
        ~uid:(current t).Spreadsheet.uid
        ~dur_ns:(Obs.now_ns () - t0) ~kind:"op-rejected"
        (Printf.sprintf "%s: %s" (Op.describe op) (Errors.to_string e));
      Error e

let history t =
  List.rev t.past
  |> List.mapi (fun i s -> { index = i + 1; label = s.label })

let can_undo t = List.length t.past > 1
let can_redo t = t.future <> []

let undo t =
  match t.past with
  | s :: (_ :: _ as rest) ->
      Obs.Flightrec.record ~uid:s.sheet.Spreadsheet.uid ~kind:"undo" s.label;
      Some (observe { t with past = rest; future = s :: t.future })
  | _ -> None

let redo t =
  match t.future with
  | s :: rest ->
      Obs.Flightrec.record ~uid:s.sheet.Spreadsheet.uid ~kind:"redo" s.label;
      Some (observe { t with past = s :: t.past; future = rest })
  | [] -> None

let goto t index =
  let position = List.length t.past in
  let total = position + List.length t.future in
  if index < 1 || index > total then None
  else if index = position then Some t
  else if index < position then
    (* undo (position - index) steps *)
    let rec back t n = if n = 0 then Some t else Option.bind (undo t) (fun t -> back t (n - 1)) in
    back t (position - index)
  else
    let rec forward t n =
      if n = 0 then Some t else Option.bind (redo t) (fun t -> forward t (n - 1))
    in
    forward t (index - position)

let rec undo_many t n =
  if n <= 0 then t
  else match undo t with None -> t | Some t' -> undo_many t' (n - 1)

let save_as t name =
  Store.save t.sheets ~name (current t);
  push t (Printf.sprintf "Save as %s" name) (current t)

let open_sheet t name =
  match Store.open_ t.sheets name with
  | None -> Error (Errors.No_such_sheet name)
  | Some sheet -> Ok (push t (Printf.sprintf "Open %s" name) sheet)

let load_relation t ~name rel =
  push t
    (Printf.sprintf "Load %s" name)
    (Spreadsheet.of_relation ~name rel)

let push_sheet t ~label sheet = push t label sheet

let selections_on t col = Engine.selections_on (current t) col

let modification t label result =
  match result with
  | Ok sheet ->
      Obs.Flightrec.record ~uid:sheet.Spreadsheet.uid ~kind:"op" label;
      Ok (push t label sheet)
  | Error e ->
      Obs.Flightrec.record
        ~uid:(current t).Spreadsheet.uid ~kind:"op-rejected"
        (Printf.sprintf "%s: %s" label (Errors.to_string e));
      Error e

let replace_selection t ~id pred =
  modification t
    (Printf.sprintf "Modify selection #%d to %s" id (Expr.to_string pred))
    (Engine.replace_selection (current t) id pred)

let remove_selection t ~id =
  modification t
    (Printf.sprintf "Remove selection #%d" id)
    (Engine.remove_selection (current t) id)

let remove_computed t name =
  modification t
    (Printf.sprintf "Remove column %s" name)
    (Engine.remove_computed (current t) name)

let materialized t = Materialize.visible (current t)
