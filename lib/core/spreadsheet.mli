(** The spreadsheet: the paper's quadruple [S = (R, C, G, O)]
    (Definition 1) together with its query state.

    - [R] is the {e base relation}: the data as of the most recent
      point of non-commutativity (initially the relation the sheet was
      created from; replaced wholesale by every binary operator).
      Selections and duplicate elimination accumulated since then live
      in the query state and are applied on materialization, which is
      what makes them modifiable (Section V).
    - [C] is the column list: the base relation's columns (each
      possibly hidden by projection) followed by computed columns.
    - [G] and [O] are the grouping/ordering specification
      ({!Grouping.t}), also part of the query state. *)

open Sheet_rel

type t = {
  uid : int;
      (** unique identity of this immutable sheet value; every operator
          application produces a fresh one. Keys the materialization
          cache. *)
  name : string;  (** display name, used when saving to the store *)
  base_name : string;  (** description of [R], e.g. ["cars × dealers"] *)
  version : int;  (** the paper's superscript [j] *)
  base : Relation.t;
  state : Query_state.t;
}

val fresh_uid : unit -> int
(** For constructors outside this module (e.g. deserialization).
    Allocates from the process-global namespace, or from the current
    arena inside {!in_uid_arena}. Thread-safe. *)

(** {1 Uid arenas (Sheetserve)}

    A server session must issue the same uid sequence whether it runs
    alone or interleaved with hundreds of others — uids key the shared
    materialization cache and appear in telemetry, so nondeterministic
    allocation would make per-session replay incomparable. An {e
    arena} is a private uid namespace: inside [in_uid_arena a f],
    every uid is [a * 2^32 + local] where [local] counts up from 1
    privately to arena [a]. Arenas never collide with each other or
    with the default namespace. *)

val in_uid_arena : int -> (unit -> 'a) -> 'a
(** Run a thunk with uid allocation redirected to the given arena
    (1 <= arena <= 2^29; [Invalid_argument] otherwise). The previous
    namespace is restored afterwards, exceptions included. The arena
    selection is process-global, not thread-local: callers must
    serialize sheet-constructing work themselves — the Sheetserve
    coordinator lock does exactly this. *)

val uid_arena_of : int -> int option
(** The arena a uid was allocated from ([None] for the default
    namespace). *)

val reset_uid_arena : int -> unit
(** Forget an arena's local counter so a replay reissues the same
    uids. The caller must also drop every uid-keyed cache
    ({!Sheet_core.Materialize.reset_cache}) or stale entries keyed by
    the reused uids will be served. Test/load-harness only. *)

val of_relation : name:string -> Relation.t -> t
(** The base spreadsheet [S^0] (Definition 2): columns inherited,
    grouping and ordering empty. *)

val bump : t -> t
(** Next version of the same sheet. *)

val grouping : t -> Grouping.t

val base_schema : t -> Schema.t

val full_schema : t -> Schema.t
(** Base columns in base order, then computed columns in definition
    order — including hidden ones. *)

val visible_schema : t -> Schema.t

val visible_columns : t -> string list
val hidden_columns : t -> string list

val is_hidden : t -> string -> bool
val column_exists : t -> string -> bool
(** In the full schema. *)

val is_computed : t -> string -> bool
val is_aggregate_column : t -> string -> bool

val pp : Format.formatter -> t -> unit
(** Compact structural summary (not the data — see
    {!Render.to_string}). *)
