(** Materialization: evaluate a spreadsheet's query state against its
    base relation to produce the relation the user sees.

    Evaluation is {e precedence-stratified replay} (DESIGN.md §4):

    + apply every selection that references only base columns, then
      duplicate elimination if requested (stratum 0);
    + for each computed column in definition order: compute its cells
      (formulas row-wise; aggregates once per group at the column's
      group level, repeated on every row of the group — Table III),
      then apply the selections whose highest-ranked referenced column
      is this one;
    + sort into presentation order: the flat ordering that emulates
      the recursive grouping ({!Grouping.sort_keys}).

    This realizes the paper's commutativity (Theorem 2): the result
    depends only on the query state, never on the order in which the
    user issued the unary operators. *)

open Sheet_rel

val full : Spreadsheet.t -> Relation.t
(** All columns (hidden ones included), rows in presentation order. *)

val full_cached : Spreadsheet.t -> Relation.t
(** Like {!full}, memoized on the sheet's {!Spreadsheet.t.uid}
    (sheets are immutable values, so the cache can never go stale).
    The interface layer renders the same sheet several times per step
    — status line, data view, group boundaries — which this makes
    free.

    The cache is {e semantic}: on a uid miss it scans the cached
    states for one that {!State_subsume.check} proves subsumes the
    request (same base relation and computed columns, a provably
    weaker selection) and answers by re-filtering/re-sorting that
    entry's rows — a {e subsumed hit} — before falling back to a full
    replay. Only {e order-safe} subsumers are eligible: the entry's
    sort keys must be a prefix of the request's, so the stable re-sort
    reproduces a full replay's row order exactly (ties in base order)
    rather than inheriting the subsumer's tie arrangement — under
    Sheetserve's shared cache, served rows must not depend on what
    other sessions happen to have materialized. Every answer equals
    {!full}, rows {e and} order (property-tested on the differential
    battery and hammered concurrently by [test/test_serve.ml]).
    Bounded: past 512 entries the oldest half is evicted. *)

val visible : Spreadsheet.t -> Relation.t
(** {!full} restricted to visible columns. *)

val seed_cache : Spreadsheet.t -> Relation.t -> unit
(** Install a known-correct full materialization for a sheet (used by
    {!Incremental}). The caller guarantees the relation equals what
    {!full} would compute. *)

(** {2 Cache lifecycle}

    [full_cached] and [seed_cache] share ONE process-global table
    keyed by sheet uid. Because every engine op returns a sheet with a
    fresh uid, entries never go stale; but the table is shared across
    every session/spreadsheet alive in the process, so tests that
    assert on hit/miss behaviour must call {!reset_cache} first.
    Every cache operation ([full_cached], [seed_cache],
    {!cache_stats}, {!reset_cache}) is linearized under one internal
    mutex, so Sheetserve handler threads may call them concurrently:
    the hit-kind identity requests = exact + subsumed + miss stays
    exact and no thread can observe (or cache) a torn entry. The lock
    is held across the replay a miss triggers; concurrent misses
    serialize.
    Eviction drops the {e oldest half} (by insertion order) once more
    than 512 entries are resident, so a hot subsumer is not thrown
    away with the cold tail; the flight recorder's [cache-eviction]
    event carries the actual evicted count. *)

type cache_stats = {
  requests : int;  (** every [full_cached] lookup *)
  hits : int;  (** exact: [full_cached] found the uid *)
  subsumed_hits : int;
      (** semantic: answered by re-filtering a proven subsumer *)
  misses : int;  (** [full_cached] had to replay *)
  seeds : int;  (** [seed_cache] installs (see {!Incremental}) *)
  evictions : int;  (** oldest-half drops past the 512-entry bound *)
  entries : int;  (** currently resident materializations *)
}

val cache_stats : unit -> cache_stats
(** Counters since the last {!reset_cache} (or process start). Local
    to this module — independent of the [Sheet_obs] metrics registry,
    which mirrors the same events under [cache.*] names. *)

val reset_cache : unit -> unit
(** Drop every cached materialization and zero {!cache_stats}
    (deterministic baseline for tests; does not touch the [Sheet_obs]
    registry). *)

val current_base_rows : Spreadsheet.t -> Relation.t
(** The paper's [R^j]: the base relation filtered by the accumulated
    selections and duplicate elimination — base columns only, no
    presentation ordering. This is what binary operators combine. *)

val finest_group_boundaries : Spreadsheet.t -> Relation.t -> int list
(** 0-based indices of rows that end a finest-level group in a
    materialized relation (excluding the last row). Empty when the
    sheet has no grouping. *)

val group_count : Spreadsheet.t -> level:int -> int
(** Number of groups at a paper group level of the materialized
    sheet. *)
