open Sheet_rel
module Obs = Sheet_obs.Obs

let c_plan_nodes = Obs.Metrics.counter Obs.k_plan_nodes
let c_plan_rows_in = Obs.Metrics.counter Obs.k_plan_rows_in
let c_plan_rows_out = Obs.Metrics.counter Obs.k_plan_rows_out

type node =
  | Scan of Relation.t
  | Project of string list * node
  | Filter of Expr.t * node
  | Distinct_on of string list * node
  | Extend_formula of extend * node
  | Extend_aggregate of extend_agg * node
  | Sort of (string * [ `Asc | `Desc ]) list * node

and extend = { name : string; ty : Value.vtype; expr : Expr.t }

and extend_agg = {
  agg_name : string;
  agg_ty : Value.vtype;
  fn : Expr.agg_fun;
  arg : Expr.t option;
  basis : string list;
}

(* ---------- compilation (mirrors Materialize's stratified replay) -- *)

let of_sheet (sheet : Spreadsheet.t) =
  let state = sheet.Spreadsheet.state in
  let stratum pred = Query_state.selection_stratum state pred in
  let preds_at k =
    List.filter_map
      (fun (s : Query_state.selection) ->
        if stratum s.Query_state.pred = k then Some s.Query_state.pred
        else None)
      state.Query_state.selections
  in
  let base_schema = Spreadsheet.base_schema sheet in
  let plan = Scan sheet.Spreadsheet.base in
  let plan =
    List.fold_left (fun plan pred -> Filter (pred, plan)) plan (preds_at 0)
  in
  let plan =
    if state.Query_state.dedup then
      let visible_base =
        List.filter
          (fun n -> not (List.mem n state.Query_state.hidden))
          (Schema.names base_schema)
      in
      Distinct_on (visible_base, plan)
    else plan
  in
  let plan, _ =
    List.fold_left
      (fun (plan, k) (c : Computed.t) ->
        let plan =
          match c.Computed.spec with
          | Computed.Formula expr ->
              Extend_formula
                ({ name = c.Computed.name; ty = c.Computed.ty; expr }, plan)
          | Computed.Aggregate { fn; arg; level } ->
              Extend_aggregate
                ( { agg_name = c.Computed.name;
                    agg_ty = c.Computed.ty;
                    fn;
                    arg;
                    basis =
                      Grouping.cumulative_basis
                        (Spreadsheet.grouping sheet)
                        level },
                  plan )
        in
        let plan =
          List.fold_left
            (fun plan pred -> Filter (pred, plan))
            plan (preds_at k)
        in
        (plan, k + 1))
      (plan, 1) state.Query_state.computed
  in
  let keys =
    List.map
      (fun (attr, dir) ->
        (attr, match dir with Grouping.Asc -> `Asc | Grouping.Desc -> `Desc))
      (Grouping.sort_keys (Spreadsheet.grouping sheet))
  in
  if keys = [] then plan else Sort (keys, plan)

(* ---------- execution ---------- *)

(* Every node has zero (Scan) or one child: a plan is a chain. The
   per-node work is factored out of the recursion so [execute] and
   [execute_instrumented] interpret each node with the same code. *)

let child = function
  | Scan _ -> None
  | Project (_, c)
  | Filter (_, c)
  | Distinct_on (_, c)
  | Extend_formula (_, c)
  | Extend_aggregate (_, c)
  | Sort (_, c) ->
      Some c

(* [apply_node node input] evaluates one node given its child's
   result; [input] is [None] exactly for [Scan]. *)
let apply_node node input =
  let rel () =
    match input with
    | Some rel -> rel
    | None -> invalid_arg "Plan.apply_node: inner node without input"
  in
  match node with
  | Scan rel -> rel
  | Project (cols, _) -> Rel_algebra.project cols (rel ())
  | Filter (pred, _) -> Rel_algebra.select pred (rel ())
  | Distinct_on (keys, _) ->
      let rel = rel () in
      let schema = Relation.schema rel in
      let positions = List.map (Schema.index_exn schema) keys in
      let seen = Hashtbl.create 64 in
      let rows =
        List.filter
          (fun row ->
            let key = Row.project row positions in
            let h = Row.hash key in
            let bucket =
              Hashtbl.find_opt seen h |> Option.value ~default:[]
            in
            if List.exists (fun x -> Row.equal x key) bucket then false
            else begin
              Hashtbl.replace seen h (key :: bucket);
              true
            end)
          (Relation.rows rel)
      in
      Relation.unsafe_make schema rows
  | Extend_formula ({ name; ty; expr }, _) ->
      let rel = rel () in
      let schema = Relation.schema rel in
      Rel_algebra.extend name ty
        (fun row ->
          Expr_eval.eval
            ~lookup:(fun n -> Row.get row (Schema.index_exn schema n))
            expr)
        rel
  | Extend_aggregate ({ agg_name; agg_ty; fn; arg; basis }, _) ->
      let rel = rel () in
      let schema = Relation.schema rel in
      let positions = List.map (Schema.index_exn schema) basis in
      let groups = Rel_algebra.group_rows basis rel in
      let table = Hashtbl.create 32 in
      List.iter
        (fun (key, rows) ->
          Hashtbl.add table (Row.hash key)
            (key, Rel_algebra.aggregate_value rel rows fn arg))
        groups;
      Rel_algebra.extend agg_name agg_ty
        (fun row ->
          let key = Row.project row positions in
          match
            List.find_opt
              (fun (k, _) -> Row.equal k key)
              (Hashtbl.find_all table (Row.hash key))
          with
          | Some (_, v) -> v
          | None -> Value.Null)
        rel
  | Sort (keys, _) -> Rel_algebra.sort keys (rel ())

(* ---------- node labels (shared by explain / explain analyze) ---- *)

let node_label = function
  | Scan rel ->
      Printf.sprintf "Scan (%d rows, %d columns)"
        (Relation.cardinality rel)
        (Schema.arity (Relation.schema rel))
  | Project (cols, _) ->
      Printf.sprintf "Project [%s]" (String.concat ", " cols)
  | Filter (pred, _) -> Printf.sprintf "Filter %s" (Expr.to_string pred)
  | Distinct_on (keys, _) ->
      Printf.sprintf "Distinct on [%s]" (String.concat ", " keys)
  | Extend_formula (e, _) ->
      Printf.sprintf "Extend %s = %s" e.name (Expr.to_string e.expr)
  | Extend_aggregate (e, _) ->
      Printf.sprintf "ExtendAgg %s = %s(%s) over [%s]" e.agg_name
        (Expr.agg_fun_name e.fn)
        (match e.arg with Some a -> Expr.to_string a | None -> "*")
        (String.concat ", " e.basis)
  | Sort (keys, _) ->
      Printf.sprintf "Sort [%s]"
        (String.concat ", "
           (List.map
              (fun (col, d) ->
                col ^ (match d with `Asc -> " asc" | `Desc -> " desc"))
              keys))

let node_kind = function
  | Scan _ -> "scan"
  | Project _ -> "project"
  | Filter _ -> "filter"
  | Distinct_on _ -> "distinct"
  | Extend_formula _ -> "extend"
  | Extend_aggregate _ -> "extend-agg"
  | Sort _ -> "sort"

let node_histogram node =
  Obs.Histogram.histogram (Obs.h_plan_node_prefix ^ node_kind node)

(* ---------- fused execution ----------

   [execute] does not interpret the chain node by node. It linearizes
   the plan and compiles each maximal run of streaming nodes
   (Filter / Project / Extend_formula) into per-row closures applied
   in a single pass over the current row array — one intermediate
   array per run instead of one per node. Blocking nodes
   (Distinct_on, Extend_aggregate, Sort) cut a run: they need the
   whole input, and run as one array operation each (hash tables
   keyed on real row equality, pre-sized to the input; Sort orders an
   index permutation). Per-node-kind histograms are still fed: a
   fused pass records its duration under every node kind it
   subsumes. [execute_instrumented] stays node-at-a-time so EXPLAIN
   ANALYZE and the span-per-node contract keep exact self-times. *)

let linearize node =
  let rec go acc = function
    | Scan rel -> (rel, acc)
    | n -> (
        match child n with
        | Some c -> go (n :: acc) c
        | None -> invalid_arg "Plan.linearize: inner node without child")
  in
  go [] node

type step = Keep of (Row.t -> bool) | Map of (Row.t -> Row.t)

(* Compile one streaming node against its input schema; returns the
   per-row step and the output schema. Type errors surface as the
   same [Algebra_error] the unfused interpreter raised. *)
let compile_streaming schema = function
  | Filter (pred, _) ->
      (match Expr_check.check_pred schema pred with
      | Ok () -> ()
      | Error msg ->
          raise (Rel_algebra.Algebra_error ("selection: " ^ msg)));
      let index = Schema.compile_index schema in
      ( Keep
          (fun row ->
            Expr_eval.eval_pred
              ~lookup:(fun name -> Row.get row (index name))
              pred),
        schema )
  | Project (cols, _) ->
      let out = Schema.restrict schema cols in
      let positions =
        Array.of_list (List.map (Schema.index_exn schema) cols)
      in
      (Map (fun row -> Row.project_arr row positions), out)
  | Extend_formula ({ name; ty; expr }, _) ->
      let out = Schema.append schema { Schema.name; ty } in
      let index = Schema.compile_index schema in
      ( Map
          (fun row ->
            Row.append1 row
              (Expr_eval.eval
                 ~lookup:(fun name -> Row.get row (index name))
                 expr)),
        out )
  | Scan _ | Distinct_on _ | Extend_aggregate _ | Sort _ ->
      invalid_arg "Plan.compile_streaming: blocking node"

let is_streaming = function
  | Filter _ | Project _ | Extend_formula _ -> true
  | Scan _ | Distinct_on _ | Extend_aggregate _ | Sort _ -> false

let run_streaming ~record ?rel nodes schema data =
  (* When this run starts directly on a scan's relation, its leading
     Filter nodes can execute over the relation's Sheetcol image as
     compiled selection vectors. Checks run first (same Algebra_error
     the step compiler raises), and a predicate that does not compile
     drops the whole prefix back into the fused row loop below. *)
  let nodes, data =
    match rel with
    | Some r when Relation.to_array r == data -> (
        let rec split preds acc = function
          | (Filter (p, _) as n) :: rest -> split (p :: preds) (n :: acc) rest
          | rest -> (List.rev preds, List.rev acc, rest)
        in
        let preds, consumed, rest = split [] [] nodes in
        if preds = [] then (nodes, data)
        else begin
          List.iter
            (fun p ->
              match Expr_check.check_pred schema p with
              | Ok () -> ()
              | Error msg ->
                  raise (Rel_algebra.Algebra_error ("selection: " ^ msg)))
            preds;
          let a0 = Gc.allocated_bytes () in
          let t0 = Obs.now_ns () in
          match Rel_algebra.columnar_filter r preds with
          | Some out ->
              let dt = Obs.now_ns () - t0 in
              List.iter (fun node -> record (node_kind node) dt) consumed;
              Obs.Profile.note_node ~rows_in:(Array.length data)
                ~rows_out:(Array.length out) ~path:"columnar" ~kind:"filter"
                ~label:(String.concat " + " (List.map node_label consumed))
                ~time_ns:dt
                ~alloc_bytes:(Gc.allocated_bytes () -. a0) ();
              (rest, out)
          | None -> (nodes, data)
        end)
    | _ -> (nodes, data)
  in
  if nodes = [] then (schema, data)
  else begin
  let steps, out_schema =
    List.fold_left
      (fun (steps, schema) node ->
        let step, schema = compile_streaming schema node in
        (step :: steps, schema))
      ([], schema) nodes
  in
  let steps = Array.of_list (List.rev steps) in
  let nsteps = Array.length steps in
  let a0 = Gc.allocated_bytes () in
  let t0 = Obs.now_ns () in
  let n = Array.length data in
  let out =
    Par.concat
      (Par.run ~n (fun lo hi ->
           let buf = Array.make (hi - lo) data.(lo) in
           let k = ref 0 in
           for i = lo to hi - 1 do
             let row = ref (Array.unsafe_get data i) in
             let keep = ref true in
             let j = ref 0 in
             while !keep && !j < nsteps do
               (match steps.(!j) with
               | Keep f -> keep := f !row
               | Map f -> row := f !row);
               incr j
             done;
             if !keep then begin
               Array.unsafe_set buf !k !row;
               incr k
             end
           done;
           if !k = hi - lo then buf else Array.sub buf 0 !k))
  in
  let dt = Obs.now_ns () - t0 in
  List.iter (fun node -> record (node_kind node) dt) nodes;
  Obs.Profile.note_node ~rows_in:n ~rows_out:(Array.length out) ~path:"fused"
    ~kind:"run"
    ~label:(String.concat " + " (List.map node_label nodes))
    ~time_ns:dt
    ~alloc_bytes:(Gc.allocated_bytes () -. a0) ();
  (out_schema, out)
  end

let run_blocking ~record node schema data =
  let a0 = Gc.allocated_bytes () in
  let t0 = Obs.now_ns () in
  let result =
    match node with
    | Distinct_on (keys, _) ->
        let positions =
          Array.of_list (List.map (Schema.index_exn schema) keys)
        in
        let seen = Row.Tbl.create (max 16 (Array.length data)) in
        let keep row =
          let key = Row.project_arr row positions in
          if Row.Tbl.mem seen key then false
          else begin
            Row.Tbl.add seen key ();
            true
          end
        in
        (schema, Vec.filter_array keep data)
    | Extend_aggregate ({ agg_name; agg_ty; fn; arg; basis }, _) ->
        let positions =
          Array.of_list (List.map (Schema.index_exn schema) basis)
        in
        let groups = Row.Tbl.create (max 16 (Array.length data)) in
        Array.iter
          (fun row ->
            let key = Row.project_arr row positions in
            match Row.Tbl.find_opt groups key with
            | Some cell -> cell := row :: !cell
            | None -> Row.Tbl.add groups key (ref [ row ]))
          data;
        let for_schema = Relation.empty schema in
        let value_of = Row.Tbl.create (max 16 (Row.Tbl.length groups)) in
        Row.Tbl.iter
          (fun key cell ->
            Row.Tbl.add value_of key
              (Rel_algebra.aggregate_value for_schema (List.rev !cell) fn arg))
          groups;
        let out =
          Array.map
            (fun row ->
              let key = Row.project_arr row positions in
              let v =
                match Row.Tbl.find_opt value_of key with
                | Some v -> v
                | None -> Value.Null
              in
              Row.append1 row v)
            data
        in
        (Schema.append schema { Schema.name = agg_name; ty = agg_ty }, out)
    | Sort (keys, _) ->
        let positions =
          List.map
            (fun (name, dir) -> (Schema.index_exn schema name, dir))
            keys
        in
        let compare_rows ra rb =
          let rec go = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c = Value.compare (Row.get ra i) (Row.get rb i) in
                let c = match dir with `Asc -> c | `Desc -> -c in
                if c <> 0 then c else go rest
          in
          go positions
        in
        (schema, Vec.stable_sorted compare_rows data)
    | Scan _ | Filter _ | Project _ | Extend_formula _ ->
        invalid_arg "Plan.run_blocking: streaming node"
  in
  let dt = Obs.now_ns () - t0 in
  record (node_kind node) dt;
  Obs.Profile.note_node ~rows_in:(Array.length data)
    ~rows_out:(Array.length (snd result)) ~path:"blocking"
    ~kind:(node_kind node) ~label:(node_label node) ~time_ns:dt
    ~alloc_bytes:(Gc.allocated_bytes () -. a0) ();
  result

(* Run [f ()] inside a Sheetdoctor profile region and commit it with
   the result cardinality (or -1 when [f] raises). The attribution
   hooks in [run_streaming]/[run_blocking]/[Rel_algebra] only record
   while such a region is open. *)
let profiled ~kind ~uid f =
  Obs.Profile.enter ~kind ~uid;
  match f () with
  | rel ->
      Obs.Profile.commit ~rows_out:(Relation.cardinality rel);
      rel
  | exception e ->
      Obs.Profile.commit ~rows_out:(-1);
      raise e

let execute_raw node =
  let base, ops = linearize node in
  let record kind dt =
    Obs.Histogram.record
      (Obs.Histogram.histogram (Obs.h_plan_node_prefix ^ kind))
      dt
  in
  let t0 = Obs.now_ns () in
  let schema = Relation.schema base in
  let data = Relation.to_array base in
  record "scan" (Obs.now_ns () - t0);
  (* [rel] is the relation whose array [data] still is — only the
     scan's, before any node transformed it — so the first streaming
     run can use its columnar image. *)
  let rec go rel schema data = function
    | [] -> (schema, data)
    | n :: _ as ops when is_streaming n ->
        let rec split acc = function
          | m :: rest when is_streaming m -> split (m :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let run, rest = split [] ops in
        let schema, data = run_streaming ~record ?rel run schema data in
        go None schema data rest
    | n :: rest ->
        let schema, data = run_blocking ~record n schema data in
        go None schema data rest
  in
  let schema, data = go (Some base) schema data ops in
  Relation.unsafe_of_array schema data

let execute ?(uid = 0) node =
  profiled ~kind:"plan" ~uid (fun () -> execute_raw node)

(* ---------- instrumented execution (EXPLAIN ANALYZE) ---------- *)

type profile = {
  p_label : string;
  p_rows_out : int;
  p_time_ns : int;  (** this node only, child excluded *)
  p_child : profile option;
}

let rec instrumented_node node =
  (* the child runs first, outside this node's span, so [p_time_ns]
     and the span duration are self-time *)
  let below = Option.map instrumented_node (child node) in
  let input = Option.map fst below in
  let rows_in = match input with Some r -> Relation.cardinality r | None -> 0 in
  let sp = Obs.span ~kind:(node_kind node) "plan.node" in
  let a0 = Gc.allocated_bytes () in
  let t0 = Obs.now_ns () in
  let rel = apply_node node input in
  let dt = Obs.now_ns () - t0 in
  Obs.Histogram.record (node_histogram node) dt;
  let rows_out = Relation.cardinality rel in
  Obs.Metrics.incr c_plan_nodes;
  Obs.Metrics.incr ~by:rows_in c_plan_rows_in;
  Obs.Metrics.incr ~by:rows_out c_plan_rows_out;
  Obs.finish ~rows_in ~rows_out sp;
  Obs.Profile.note_node ~rows_in ~rows_out ~kind:(node_kind node)
    ~label:(node_label node) ~time_ns:dt
    ~alloc_bytes:(Gc.allocated_bytes () -. a0) ();
  ( rel,
    { p_label = node_label node;
      p_rows_out = rows_out;
      p_time_ns = dt;
      p_child = Option.map snd below } )

let execute_instrumented ?(uid = 0) node =
  Obs.Profile.enter ~kind:"plan" ~uid;
  match instrumented_node node with
  | (rel, _) as res ->
      Obs.Profile.commit ~rows_out:(Relation.cardinality rel);
      res
  | exception e ->
      Obs.Profile.commit ~rows_out:(-1);
      raise e

let rec profile_total_ns p =
  p.p_time_ns
  + match p.p_child with Some c -> profile_total_ns c | None -> 0

let render_profile profile =
  let buf = Buffer.create 512 in
  let total = float_of_int (max 1 (profile_total_ns profile)) in
  let rec go indent (p : profile) =
    Buffer.add_string buf
      (Printf.sprintf "%s%s  (rows=%d, time=%.3f ms, %.1f%%)\n" indent
         p.p_label p.p_rows_out
         (float_of_int p.p_time_ns /. 1e6)
         (100. *. float_of_int p.p_time_ns /. total));
    match p.p_child with
    | Some c -> go (indent ^ "  ") c
    | None -> ()
  in
  go "" profile;
  Buffer.add_string buf
    (Printf.sprintf "Total: %.3f ms\n" (total /. 1e6));
  Buffer.contents buf

let explain_analyze ?(uid = 0) plan =
  let rel, profile = execute_instrumented ~uid plan in
  (rel, profile, render_profile profile)

(* ---------- schema of a plan ---------- *)

let rec output_columns = function
  | Scan rel -> Schema.names (Relation.schema rel)
  | Project (cols, _) -> cols
  | Filter (_, child) | Distinct_on (_, child) | Sort (_, child) ->
      output_columns child
  | Extend_formula ({ name; _ }, child) -> output_columns child @ [ name ]
  | Extend_aggregate ({ agg_name; _ }, child) ->
      output_columns child @ [ agg_name ]

let rec output_schema = function
  | Scan rel -> Relation.schema rel
  | Project (cols, child) -> Schema.restrict (output_schema child) cols
  | Filter (_, child) | Distinct_on (_, child) | Sort (_, child) ->
      output_schema child
  | Extend_formula ({ name; ty; _ }, child) ->
      Schema.append (output_schema child) { Schema.name; ty }
  | Extend_aggregate ({ agg_name; agg_ty; _ }, child) ->
      Schema.append (output_schema child)
        { Schema.name = agg_name; ty = agg_ty }

(* ---------- optimization ---------- *)

let union_cols a b =
  a @ List.filter (fun c -> not (List.mem c a)) b

(* Filter fusion: Filter p1 (Filter p2 x) -> Filter (p2 AND p1) x.
   Order inside the conjunction keeps the earlier (inner) predicate
   first, matching replay order. *)
let rec fuse = function
  | Filter (p1, child) -> (
      match fuse child with
      | Filter (p2, grandchild) -> Filter (Expr.And (p2, p1), grandchild)
      | fused -> Filter (p1, fused))
  | Scan rel -> Scan rel
  | Project (cols, c) -> Project (cols, fuse c)
  | Distinct_on (k, c) -> Distinct_on (k, fuse c)
  | Extend_formula (e, c) -> Extend_formula (e, fuse c)
  | Extend_aggregate (e, c) -> Extend_aggregate (e, fuse c)
  | Sort (k, c) -> Sort (k, fuse c)

(* Filter pushdown: a filter may slide below a formula extension whose
   output it does not read. It must NOT cross an aggregate extension
   (HAVING/WHERE distinction) or duplicate elimination (representative
   choice). *)
let rec pushdown = function
  | Filter (pred, child) -> (
      let cols = Expr.columns pred in
      match pushdown child with
      | Extend_formula (e, grandchild) when not (List.mem e.name cols) ->
          Extend_formula (e, pushdown (Filter (pred, grandchild)))
      | Sort (k, grandchild) ->
          (* filtering before sorting is cheaper and order-stable *)
          Sort (k, pushdown (Filter (pred, grandchild)))
      | pushed -> Filter (pred, pushed))
  | Scan rel -> Scan rel
  | Project (cols, c) -> Project (cols, pushdown c)
  | Distinct_on (k, c) -> Distinct_on (k, pushdown c)
  | Extend_formula (e, c) -> Extend_formula (e, pushdown c)
  | Extend_aggregate (e, c) -> Extend_aggregate (e, pushdown c)
  | Sort (k, c) -> Sort (k, pushdown c)

(* Projection pruning: walk down with the set of needed columns; drop
   extensions nobody consumes; project the scan down to what is
   used. Distinct_on blocks pruning below it (all its key columns are
   needed and row identity upstream matters only through them — keys
   are already in [needed] via node_inputs). *)
let rec prune needed = function
  | Scan rel ->
      let present = Schema.names (Relation.schema rel) in
      let keep = List.filter (fun c -> List.mem c needed) present in
      if List.length keep = List.length present then Scan rel
      else Project (keep, Scan rel)
  | Project (cols, c) ->
      let keep = List.filter (fun x -> List.mem x needed) cols in
      Project (keep, prune (union_cols keep []) c)
  | Filter (pred, c) ->
      Filter (pred, prune (union_cols needed (Expr.columns pred)) c)
  | Distinct_on (k, c) -> Distinct_on (k, prune (union_cols needed k) c)
  | Extend_formula (e, c) ->
      if List.mem e.name needed then
        Extend_formula
          ( e,
            prune
              (union_cols
                 (List.filter (fun x -> x <> e.name) needed)
                 (Expr.columns e.expr))
              c )
      else prune needed c
  | Extend_aggregate (e, c) ->
      if List.mem e.agg_name needed then
        let inputs =
          e.basis
          @ (match e.arg with Some x -> Expr.columns x | None -> [])
        in
        Extend_aggregate
          ( e,
            prune
              (union_cols
                 (List.filter (fun x -> x <> e.agg_name) needed)
                 inputs)
              c )
      else prune needed c
  | Sort (k, c) ->
      Sort (k, prune (union_cols needed (List.map fst k)) c)

let and_all = function
  | [] -> Expr.Const (Value.Bool true)
  | p :: ps -> List.fold_left (fun a b -> Expr.And (a, b)) p ps

(* Drop conjuncts that are provably tautological or implied by the
   remaining ones (right-to-left, so of two equivalent conjuncts the
   earlier survives). Sound: implication is proved over every row,
   nulls included, so the filtered multiset is unchanged. *)
let prune_conjuncts ~type_of conjs =
  let arr = Array.of_list conjs in
  let keep = Array.make (Array.length arr) true in
  let kept_except i =
    Array.to_list arr |> List.filteri (fun j _ -> keep.(j) && j <> i)
  in
  for i = Array.length arr - 1 downto 0 do
    let rest = kept_except i in
    if
      Expr_domain.tautology ~type_of arr.(i)
      || (rest <> [] && Expr_domain.implies ~type_of (and_all rest) arr.(i))
    then keep.(i) <- false
  done;
  Array.to_list arr |> List.filteri (fun j _ -> keep.(j))

let rec simplify_filters = function
  | Filter (pred, c) -> (
      let c = simplify_filters c in
      let type_of = Schema.type_of (output_schema c) in
      match Expr_simplify.simplify pred with
      | Expr.Const (Value.Bool true) -> c
      | pred ->
          if not (Expr_domain.satisfiable ~type_of pred) then
            (* a provably-false filter: the whole subtree compiles to
               an empty scan of the same schema *)
            Scan (Relation.empty (output_schema c))
          else begin
            match prune_conjuncts ~type_of (Expr.conjuncts pred) with
            | [] -> c
            | conjs -> Filter (and_all conjs, c)
          end)
  | Scan rel -> Scan rel
  | Project (cols, c) -> Project (cols, simplify_filters c)
  | Distinct_on (k, c) -> Distinct_on (k, simplify_filters c)
  | Extend_formula (e, c) ->
      Extend_formula
        ({ e with expr = Expr_simplify.simplify e.expr }, simplify_filters c)
  | Extend_aggregate (e, c) -> Extend_aggregate (e, simplify_filters c)
  | Sort (k, c) -> Sort (k, simplify_filters c)

let optimize ?keep plan =
  let keep = Option.value keep ~default:(output_columns plan) in
  let plan = fuse plan in
  let plan = pushdown plan in
  let plan = fuse plan in
  let plan = simplify_filters plan in
  prune keep plan

(* ---------- explain ---------- *)

let explain plan =
  let buf = Buffer.create 512 in
  let rec go indent node =
    Buffer.add_string buf
      (Printf.sprintf "%s%s\n" indent (node_label node));
    match child node with
    | Some c -> go (indent ^ "  ") c
    | None -> ()
  in
  go "" plan;
  Buffer.contents buf
