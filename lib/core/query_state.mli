(** The query state of a spreadsheet (Section V-A).

    Operators are stored {e unordered}, associated with the objects
    they affect: selections with the columns their predicates
    reference, computed columns with their definitions, projections as
    a hidden-column list, grouping and ordering as their
    specifications. Theorem 3 makes modifying this state equivalent to
    rewriting the (never explicitly articulated) query history,
    because the unary operators commute under precedence.

    Replay order is derived, not stored: a selection belongs to the
    {e stratum} of the highest-ranked computed column it references
    (base columns have rank 0, the [k]-th computed column rank [k]),
    and is applied right after that column is computed. *)

open Sheet_rel

type selection = { id : int; pred : Expr.t }

type t = {
  selections : selection list;  (** in creation order; ids are stable *)
  hidden : string list;  (** projected-out columns, restorable *)
  computed : Computed.t list;  (** definition order = rank order *)
  dedup : bool;  (** has duplicate elimination been requested *)
  grouping : Grouping.t;
}

val empty : t

(** {1 Selections} *)

val add_selection : t -> Expr.t -> t * selection
val remove_selection : t -> int -> (t, string) result
val replace_selection : t -> int -> Expr.t -> (t, string) result
val find_selection : t -> int -> selection option

val selections_on : t -> string -> selection list
(** Selections whose predicate references the column — what the
    interface shows when the user right-clicks that column to modify
    a previously applied predicate (Sec. V-B). *)

(** {1 Computed columns} *)

val add_computed : t -> Computed.t -> t
val find_computed : t -> string -> Computed.t option
val remove_computed : t -> string -> t
val computed_rank : t -> string -> int
(** 0 for base columns, the 1-based definition index for computed
    ones. *)

val selection_stratum : t -> Expr.t -> int
(** Highest {!computed_rank} among the predicate's columns. *)

(** {1 Dependencies} *)

val referenced_columns : t -> string list
(** Sorted names of every column the state reads: selection
    predicates, computed-column definitions, grouping bases, and
    ordering keys. A hidden column outside this list feeds nothing. *)

val column_dependents : t -> string -> string list
(** Human-readable descriptions of every operator that reads the
    column: selections and computed-column definitions. Used to refuse
    removing a column that serves dependencies (Sec. V-B). *)

val aggregates_broken_by_grouping_change : t -> surviving_levels:int -> Computed.t list
(** Aggregates whose group level exceeds [surviving_levels] — they
    would dangle if deeper levels were destroyed. *)

val depends_on_aggregate : t -> string -> bool
(** Does the (computed) column transitively read any aggregate
    column? Grouping by such a column would be circular. *)

(** {1 Whole-state edits} *)

val rename_column : t -> old_name:string -> new_name:string -> t
val set_grouping : t -> Grouping.t -> t
