(** Cross-state subsumption: when is query state [candidate] provably
    answerable from the materialization of query state [cached]?

    Both states must sit over the {e same} base relation (the caller
    checks that — {!Materialize} compares bases physically). Given
    that, [cached]'s full materialization can serve [candidate] when

    - the computed-column lists are equal (same definitions in the
      same order, so both fulls have the same schema and the same
      derived cells),
    - duplicate elimination agrees, and when it is on, the stratum-0
      selections and the hidden {e base} columns agree (they determine
      the dedup key and its surviving representatives),
    - every aggregate (and every formula embedding an aggregate) sees
      the same input rows: the grouping bases and the selections at
      strata below the deepest such column are equal, and
    - [candidate]'s selection conjunction {!Sheetsolve.subsumes}
      [cached]'s.

    Then [candidate]'s rows are exactly [cached]'s rows re-filtered by
    [candidate]'s selections, modulo sort order — grouping and
    ordering never change {e which} rows or cells exist, only their
    arrangement, so the server re-sorts.

    The check is total and exception-free; [Incomparable] is the
    liberal default and claims nothing. *)

open Sheet_rel

type outcome =
  | Equal  (** same selections too: serve by re-sorting alone *)
  | Subsumed of Sheetsolve.proof
      (** serve by re-filtering with [candidate]'s selections, then
          re-sorting *)
  | Incomparable of string  (** no claim; the string says what blocked *)

val check :
  type_of:(string -> Value.vtype option) ->
  candidate:Query_state.t ->
  cached:Query_state.t ->
  outcome
(** [type_of] should come from the (shared) full schema,
    e.g. [Schema.type_of (Spreadsheet.full_schema sheet)]. *)

val selection_conj : Query_state.t -> Expr.t
(** The state's selections as one conjunction ([TRUE] when none) —
    the formula handed to {!Sheetsolve} and to the re-filter step. *)

val describe : outcome -> string
(** One line for flight-recorder labels and diagnostics. *)
