(** The direct-manipulation browser: a pure view-model for a
    full-screen spreadsheet UI.

    This is the closest this repository comes to the SheetMusiq
    prototype's screen: a cell cursor over the visible materialization,
    single-key operators applied to "what you are touching", a
    contextual menu on demand, and a command line for everything the
    Script language can say. The model is pure — `handle` maps a state
    and an input event to a new state — so the whole interaction logic
    is unit-testable; `bin/sheetmusiq_tui.exe` is a thin terminal loop
    around it.

    Keys (grid mode):
    - arrows / page movement: move the cell cursor;
    - [f] filter to the cell's value (Sec. VI "Selection": click a
      cell, filter on its value);
    - [s] sort by the cursor column (repeated presses flip the
      direction — Sec. VI "Ordering");
    - [g] add the cursor column to the grouping;
    - [a] average the cursor column per finest group (the Fig. 1
      shortcut); [c] count rows per finest group;
    - [h] hide the cursor column;
    - [u] undo, [r] redo;
    - [m] open the contextual menu for the cursor column;
    - [:] open the command line (any Script command);
    - [F] open the Sheetscope flight-recorder pane (Esc closes);
    - [q] quit. *)

open Sheet_rel
open Sheet_core

type mode =
  | Grid
  | Menu of { items : Context_menu.item list; selected : int }
  | Command of string  (** text typed so far *)
  | Flightrec  (** full-screen flight-recorder pane *)

type t = {
  session : Session.t;
  row : int;  (** cursor row within the visible materialization *)
  col : int;  (** cursor column index within visible columns *)
  top : int;  (** first visible data row (scrolling) *)
  mode : mode;
  message : string;  (** status / error line *)
  last_ms : float option;
      (** wall time of the last command-line/keystroke command,
          rendered as a "last N ms" segment of the status line *)
  quit : bool;
}

type event =
  | Up
  | Down
  | Left
  | Right
  | Page_down
  | Page_up
  | Enter
  | Escape
  | Backspace
  | Key of char

val init : Session.t -> t

val handle : ?page:int -> t -> event -> t
(** Process one input event; [page] is the grid height used for
    paging and scroll clamping (default 20). *)

val visible : t -> Relation.t
(** The relation under the cursor (cached materialization). *)

val cursor_cell : t -> (string * Value.t) option
(** Column name and value under the cursor; [None] on an empty
    sheet. *)

val render_text : ?width:int -> ?height:int -> t -> string
(** Plain-text rendering of the full screen (status line, grid with
    cursor brackets, menu or command line) — used by the terminal
    front end and by tests. *)
