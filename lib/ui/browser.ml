open Sheet_rel
open Sheet_core

type mode =
  | Grid
  | Menu of { items : Context_menu.item list; selected : int }
  | Command of string
  | Flightrec

type t = {
  session : Session.t;
  row : int;
  col : int;
  top : int;
  mode : mode;
  message : string;
  last_ms : float option;
  quit : bool;
}

type event =
  | Up
  | Down
  | Left
  | Right
  | Page_down
  | Page_up
  | Enter
  | Escape
  | Backspace
  | Key of char

let init session =
  { session; row = 0; col = 0; top = 0; mode = Grid;
    message = "f filter  s sort  g group  a avg  c count  h hide  u undo  \
               m menu  : command  F flightrec  q quit";
    last_ms = None;
    quit = false }

let visible t = Session.materialized t.session

let dims t =
  let rel = visible t in
  (Relation.cardinality rel, Schema.arity (Relation.schema rel))

let clamp t ~page =
  let rows, cols = dims t in
  let row = max 0 (min t.row (rows - 1)) in
  let col = max 0 (min t.col (cols - 1)) in
  let top =
    if row < t.top then row
    else if row >= t.top + page then row - page + 1
    else t.top
  in
  { t with row; col; top = max 0 top }

let cursor_cell t =
  let rel = visible t in
  match List.nth_opt (Relation.rows rel) t.row with
  | Some r when Schema.arity (Relation.schema rel) > t.col ->
      let c = Schema.column_at (Relation.schema rel) t.col in
      Some (c.Schema.name, Row.get r t.col)
  | _ -> None

let cursor_column t =
  let rel = visible t in
  if Schema.arity (Relation.schema rel) > t.col then
    Some (Schema.column_at (Relation.schema rel) t.col).Schema.name
  else None

(* current sort direction of a column, to flip on repeated 's' *)
let next_dir t col =
  let grouping = Spreadsheet.grouping (Session.current t.session) in
  match List.assoc_opt col grouping.Grouping.leaf_order with
  | Some Grouping.Asc -> "desc"
  | _ -> "asc"

let run_command t text =
  if String.trim text = "lint" then
    (* analysis lives outside Script's command language; the status
       line shows the worst finding and the total count *)
    let diags = Sheet_analysis.Sheetlint.session t.session in
    let message =
      match Sheet_analysis.Diagnostic.sort diags with
      | [] -> "lint: no diagnostics"
      | [ d ] -> "lint: " ^ Sheet_analysis.Diagnostic.to_string d
      | d :: _ ->
          Printf.sprintf "lint: %d findings — %s" (List.length diags)
            (Sheet_analysis.Diagnostic.to_string d)
    in
    { t with mode = Grid; message }
  else if String.trim text = "doctor" then
    let message =
      match Sheet_analysis.Doctor.run () with
      | [] -> "doctor: no diagnostics"
      | [ d ] -> "doctor: " ^ Sheet_analysis.Diagnostic.to_string d
      | d :: _ as diags ->
          Printf.sprintf "doctor: %d findings — %s" (List.length diags)
            (Sheet_analysis.Diagnostic.to_string d)
    in
    { t with mode = Grid; message }
  else
  match Sheet_obs.Obs.time (fun () -> Script.run_line t.session text) with
  | Ok { Script.session; output }, ms ->
      { t with
        session;
        mode = Grid;
        last_ms = Some ms;
        message =
          (match output with
          | Some out -> (
              (* keep single-line outputs in the status line *)
              match String.index_opt out '\n' with
              | None -> out
              | Some _ -> "ok")
          | None -> text) }
  | Error msg, _ -> { t with mode = Grid; message = "error: " ^ msg }

let apply_key t ~page key =
  match (key, cursor_cell t, cursor_column t) with
  | 'q', _, _ -> { t with quit = true }
  | 'u', _, _ ->
      run_command t "undo"
  | 'r', _, _ -> (
      match Session.redo t.session with
      | Some session -> { t with session; message = "redo" }
      | None -> { t with message = "nothing to redo" })
  | 'f', Some (col, value), _ ->
      let literal =
        match value with
        | Value.String s -> Printf.sprintf "'%s'" s
        | Value.Date _ ->
            Printf.sprintf "DATE '%s'" (Value.to_string value)
        | Value.Null -> ""
        | v -> Value.to_string v
      in
      if Value.is_null value then
        run_command t (Printf.sprintf "select %s IS NULL" col)
      else run_command t (Printf.sprintf "select %s = %s" col literal)
  | 's', _, Some col ->
      run_command t (Printf.sprintf "order %s %s" col (next_dir t col))
  | 'g', _, Some col -> run_command t (Printf.sprintf "group %s" col)
  | 'a', _, Some col -> run_command t (Printf.sprintf "agg avg %s" col)
  | 'c', _, _ -> run_command t "agg count"
  | 'h', _, Some col -> run_command t (Printf.sprintf "hide %s" col)
  | 'm', _, Some col ->
      let items =
        Context_menu.menu
          ~stored:(Store.names (Session.store t.session))
          (Session.current t.session)
          (Context_menu.Header col)
      in
      { t with mode = Menu { items; selected = 0 } }
  | ':', _, _ -> { t with mode = Command "" }
  | 'F', _, _ ->
      { t with mode = Flightrec; message = "flight recorder (Esc to close)" }
  | _ -> { t with message = Printf.sprintf "unbound key %C" key }
  [@@warning "-27"]

let handle_grid t ~page = function
  | Up -> clamp ~page { t with row = t.row - 1 }
  | Down -> clamp ~page { t with row = t.row + 1 }
  | Left -> clamp ~page { t with col = t.col - 1 }
  | Right -> clamp ~page { t with col = t.col + 1 }
  | Page_down -> clamp ~page { t with row = t.row + page }
  | Page_up -> clamp ~page { t with row = t.row - page }
  | Enter | Escape | Backspace -> t
  | Key k -> clamp ~page (apply_key t ~page k)

let handle_menu t ~page items selected = function
  | Up ->
      { t with
        mode = Menu { items; selected = max 0 (selected - 1) } }
  | Down ->
      { t with
        mode =
          Menu
            { items;
              selected = min (List.length items - 1) (selected + 1) } }
  | Escape -> { t with mode = Grid; message = "" }
  | Enter ->
      let item = List.nth items selected in
      { t with
        mode = Grid;
        message =
          (if item.Context_menu.enabled then
             item.Context_menu.label ^ ": " ^ item.Context_menu.hint
           else
             "unavailable: "
             ^ Option.value item.Context_menu.reason ~default:"") }
  | _ -> clamp ~page t

let handle_command t ~page text = function
  | Enter -> clamp ~page (run_command t text)
  | Escape -> { t with mode = Grid; message = "" }
  | Backspace ->
      { t with
        mode =
          Command
            (if text = "" then ""
             else String.sub text 0 (String.length text - 1)) }
  | Key c -> { t with mode = Command (text ^ String.make 1 c) }
  | _ -> t

let handle ?(page = 20) t event =
  if t.quit then t
  else
    match t.mode with
    | Grid -> handle_grid t ~page event
    | Menu { items; selected } -> handle_menu t ~page items selected event
    | Command text -> handle_command t ~page text event
    | Flightrec -> (
        match event with
        | Escape | Key 'q' | Key 'F' -> { t with mode = Grid; message = "" }
        | _ -> t)

(* ---------- text rendering ---------- *)

let pad width s =
  let n = String.length s in
  if n >= width then String.sub s 0 width else s ^ String.make (width - n) ' '

(* Full-screen flight-recorder pane ([F] in grid mode): the most recent
   ring events, newest last, clipped to the window. *)
let render_flightrec ~width ~height t =
  let buf = Buffer.create 2048 in
  let status = Render.status_line (Session.current t.session) in
  Buffer.add_string buf (pad width status);
  Buffer.add_char buf '\n';
  let body =
    Sheet_obs.Obs.Flightrec.render ~limit:(max 1 (height - 3)) ()
  in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         Buffer.add_string buf (pad width line);
         Buffer.add_char buf '\n');
  Buffer.add_string buf (pad width t.message);
  Buffer.contents buf

let render_text ?(width = 100) ?(height = 24) t =
  if t.mode = Flightrec then render_flightrec ~width ~height t
  else
  let rel = visible t in
  let schema = Relation.schema rel in
  let cols = Schema.names schema in
  let rows = Relation.rows rel in
  (* content-based column widths (header and visible cells) *)
  let widths =
    List.mapi
      (fun j name ->
        List.fold_left
          (fun acc row ->
            max acc (String.length (Value.to_string (Row.get row j)) + 2))
          (max 8 (String.length name + 2))
          rows)
      cols
  in
  let boundaries =
    Materialize.finest_group_boundaries (Session.current t.session)
      (Materialize.full_cached (Session.current t.session))
  in
  let buf = Buffer.create 2048 in
  (* status, with the last command's wall time when known *)
  let status =
    let base = Render.status_line (Session.current t.session) in
    let base =
      match t.last_ms with
      | Some ms -> Printf.sprintf "%s | last %.1f ms" base ms
      | None -> base
    in
    base ^ " | " ^ Sheet_obs.Obs.Slo.summary () ^ " | "
    ^ Sheet_analysis.Doctor.summary ()
  in
  Buffer.add_string buf (pad width status);
  Buffer.add_char buf '\n';
  (* header with cursor column marked *)
  let header =
    String.concat " "
      (List.mapi
         (fun i c ->
           let w = List.nth widths i in
           pad w (if i = t.col then "[" ^ c ^ "]" else " " ^ c))
         cols)
  in
  Buffer.add_string buf (pad width header);
  Buffer.add_char buf '\n';
  (* grid with group separators *)
  let page = max 1 (height - 4) in
  List.iteri
    (fun i row ->
      if i >= t.top && i < t.top + page then begin
        let line =
          String.concat " "
            (List.mapi
               (fun j v ->
                 let w = List.nth widths j in
                 let text = Value.to_string v in
                 pad w
                   (if i = t.row && j = t.col then "[" ^ text ^ "]"
                    else " " ^ text))
               (Row.to_list row))
        in
        Buffer.add_string buf (pad width line);
        Buffer.add_char buf '\n';
        if List.mem i boundaries && i < t.top + page - 1 then begin
          Buffer.add_string buf
            (pad width (String.make (min width 40) '-'));
          Buffer.add_char buf '\n'
        end
      end)
    rows;
  (* mode line *)
  (match t.mode with
  | Grid | Flightrec -> Buffer.add_string buf (pad width t.message)
  | Command text -> Buffer.add_string buf (pad width (":" ^ text))
  | Menu { items; selected } ->
      List.iteri
        (fun i item ->
          let marker = if i = selected then "> " else "  " in
          let label =
            if item.Context_menu.enabled then item.Context_menu.label
            else "(" ^ item.Context_menu.label ^ ")"
          in
          Buffer.add_string buf (pad width (marker ^ label));
          Buffer.add_char buf '\n')
        items);
  Buffer.contents buf
