open Sheet_rel
open Sheet_stats

type config = { sf : float; seed : int }

let default = { sf = 0.002; seed = 20090329 }

let vi i = Value.Int i
let vf f = Value.Float (Float.round (f *. 100.0) /. 100.0)
let vs s = Value.String s
let vd days = Value.Date days

let scaled sf base floor_ =
  max floor_ (int_of_float (float_of_int base *. sf))

let date_range_start = (* 1992-01-01 *) 8035
let date_range_days = 2557 (* through 1998-12-31 *)

let gen_region rng =
  Relation.of_array Tpch_schema.region
    (Array.init 5 (fun i ->
         Row.of_list
           [ vi i; vs Tpch_text.region_names.(i);
             vs (Tpch_text.comment rng 80) ]))

let gen_nation rng =
  Relation.of_array Tpch_schema.nation
    (Array.init 25 (fun i ->
         Row.of_list
           [ vi i; vs Tpch_text.nation_names.(i);
             vi (Tpch_text.region_of_nation i);
             vs (Tpch_text.comment rng 80) ]))

let gen_supplier rng n =
  Relation.of_array Tpch_schema.supplier
    (Array.init n (fun i ->
         let key = i + 1 in
         let nation = Rng.int rng 25 in
         Row.of_list
           [ vi key;
             vs (Printf.sprintf "Supplier#%09d" key);
             vs (Tpch_text.comment rng 25);
             vi nation;
             vs (Tpch_text.phone rng nation);
             vf (Rng.float rng 11000.0 -. 1000.0);
             vs (Tpch_text.comment rng 60) ]))

let gen_customer rng n =
  Relation.of_array Tpch_schema.customer
    (Array.init n (fun i ->
         let key = i + 1 in
         let nation = Rng.int rng 25 in
         Row.of_list
           [ vi key;
             vs (Printf.sprintf "Customer#%09d" key);
             vs (Tpch_text.comment rng 25);
             vi nation;
             vs (Tpch_text.phone rng nation);
             vf (Rng.float rng 10999.99 -. 999.99);
             vs (Tpch_text.segment rng);
             vs (Tpch_text.comment rng 70) ]))

let gen_part rng n =
  Relation.of_array Tpch_schema.part
    (Array.init n (fun i ->
         let key = i + 1 in
         let m = Rng.int_in rng 1 5 in
         let brand = Printf.sprintf "Brand#%d%d" m (Rng.int_in rng 1 5) in
         Row.of_list
           [ vi key;
             vs (Tpch_text.part_name rng);
             vs (Printf.sprintf "Manufacturer#%d" m);
             vs brand;
             vs (Tpch_text.part_type rng);
             vi (Rng.int_in rng 1 50);
             vs (Tpch_text.container rng);
             vf (900.0 +. (float_of_int (key mod 200001) /. 10.0)
                 +. (100.0 *. float_of_int (key mod 1000)) /. 1000.0);
             vs (Tpch_text.comment rng 14) ]))

let gen_partsupp rng n_parts n_suppliers =
  let rows =
    List.concat_map
      (fun p ->
        let partkey = p + 1 in
        List.init 4 (fun j ->
            let suppkey =
              1 + ((partkey + (j * ((n_suppliers / 4) + 1))) mod n_suppliers)
            in
            Row.of_list
              [ vi partkey; vi suppkey;
                vi (Rng.int_in rng 1 9999);
                vf (Rng.float rng 999.0 +. 1.0);
                vs (Tpch_text.comment rng 50) ]))
      (List.init n_parts Fun.id)
  in
  Relation.make Tpch_schema.partsupp rows

let gen_orders_lineitem rng n_customers n_orders n_parts n_suppliers =
  let orders = ref [] in
  let lineitems = ref [] in
  for o = 1 to n_orders do
    let orderkey = o in
    let custkey = Rng.int_in rng 1 n_customers in
    let orderdate = date_range_start + Rng.int rng (date_range_days - 151) in
    let n_lines = Rng.int_in rng 1 7 in
    let total = ref 0.0 in
    let statuses = ref [] in
    for line = 1 to n_lines do
      let quantity = Rng.int_in rng 1 50 in
      let partkey = Rng.int_in rng 1 n_parts in
      let suppkey = Rng.int_in rng 1 n_suppliers in
      let retail = 900.0 +. (float_of_int partkey /. 10.0) in
      let extended = float_of_int quantity *. retail in
      let discount = float_of_int (Rng.int_in rng 0 10) /. 100.0 in
      let tax = float_of_int (Rng.int_in rng 0 8) /. 100.0 in
      let shipdate = orderdate + Rng.int_in rng 1 121 in
      let commitdate = orderdate + Rng.int_in rng 30 90 in
      let receiptdate = shipdate + Rng.int_in rng 1 30 in
      let today = date_range_start + date_range_days - 151 in
      let returnflag =
        if receiptdate <= today - 60 then
          if Rng.bool rng then "R" else "A"
        else "N"
      in
      let linestatus = if shipdate > today then "O" else "F" in
      statuses := linestatus :: !statuses;
      total := !total +. (extended *. (1.0 -. discount) *. (1.0 +. tax));
      lineitems :=
        Row.of_list
          [ vi orderkey; vi partkey; vi suppkey; vi line; vi quantity;
            vf extended; vf discount; vf tax; vs returnflag;
            vs linestatus; vd shipdate; vd commitdate; vd receiptdate;
            vs (Tpch_text.ship_instruct rng); vs (Tpch_text.ship_mode rng);
            vs (Tpch_text.comment rng 40) ]
        :: !lineitems
    done;
    let status =
      if List.for_all (String.equal "F") !statuses then "F"
      else if List.for_all (String.equal "O") !statuses then "O"
      else "P"
    in
    orders :=
      Row.of_list
        [ vi orderkey; vi custkey; vs status; vf !total; vd orderdate;
          vs (Tpch_text.priority rng); vs (Tpch_text.clerk rng);
          vi 0; vs (Tpch_text.comment rng 60) ]
      :: !orders
  done;
  ( Relation.make Tpch_schema.orders (List.rev !orders),
    Relation.make Tpch_schema.lineitem (List.rev !lineitems) )

let generate { sf; seed } =
  let rng = Rng.create seed in
  let n_suppliers = scaled sf 10_000 10 in
  let n_customers = scaled sf 150_000 30 in
  let n_parts = scaled sf 200_000 50 in
  let n_orders = scaled sf 1_500_000 120 in
  let region = gen_region rng in
  let nation = gen_nation rng in
  let supplier = gen_supplier rng n_suppliers in
  let customer = gen_customer rng n_customers in
  let part = gen_part rng n_parts in
  let partsupp = gen_partsupp rng n_parts n_suppliers in
  let orders, lineitem =
    gen_orders_lineitem rng n_customers n_orders n_parts n_suppliers
  in
  Sheet_sql.Catalog.of_list
    [ ("region", region); ("nation", nation); ("supplier", supplier);
      ("customer", customer); ("part", part); ("partsupp", partsupp);
      ("orders", orders); ("lineitem", lineitem) ]

let row_counts catalog =
  List.map
    (fun name ->
      (name, Relation.cardinality (Sheet_sql.Catalog.find_exn catalog name)))
    (Sheet_sql.Catalog.names catalog)
