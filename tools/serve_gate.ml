(* Sheetserve gate: boot the server on a Unix socket, replay every
   bundled TPC-H task over it from 8 concurrent clients, and fail the
   build when concurrency breaks anything observable:

   - row parity: every client's [rows] response matches a direct
     single-threaded [Script.run_silent] + [Session.materialized]
     replay of the same task, cell for cell, in order;
   - balanced spans: span open/finish stays single-writer under the
     engine lock, so the process-wide stack must end empty and
     correctly nested;
   - zero flight-recorder drops (capacity raised first, so a drop
     means lost events, not a small ring);
   - labeled per-session accounting: every client's
     engine.apply{session=uN} series has the same sample count, and
     their sum is exactly the unlabeled engine.ops total;
   - shared-cache accounting stays exact: requests = exact hits +
     subsumed hits + misses, and agrees with the Obs counters.

   Run via [dune build @serve], wired into [@gates]. *)

module Obs = Sheet_obs.Obs
module Par = Sheet_rel.Par
open Sheet_core
open Sheet_serve

let failures = ref 0

let check label ok detail =
  if not ok then begin
    Printf.printf "FAIL %s: %s\n" label detail;
    incr failures
  end

let with_config ~domains f =
  Par.set_domain_count domains;
  Par.set_parallel_threshold 64;
  Par.set_morsel_rows 128;
  Fun.protect
    ~finally:(fun () ->
      Par.set_domain_count 1;
      Par.set_parallel_threshold Par.default_parallel_threshold;
      Par.set_morsel_rows Par.default_morsel_rows)
    f

let n_clients = 8

type table = {
  t_columns : (string * Sheet_rel.Value.vtype) list;
  t_rows : Sheet_rel.Value.t list list;
}

let table_of_relation rel =
  {
    t_columns =
      List.map
        (fun c -> (c.Sheet_rel.Schema.name, c.Sheet_rel.Schema.ty))
        (Sheet_rel.Schema.columns (Sheet_rel.Relation.schema rel));
    t_rows =
      List.map Sheet_rel.Row.to_list (Sheet_rel.Relation.rows rel);
  }

(* phase 0: the single-threaded ground truth for every task *)
let direct_replay catalog (task : Sheet_tpch.Tpch_tasks.t) =
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> Error ("no base relation " ^ task.base)
  | Some base -> (
      let session = Session.create ~name:task.base base in
      match Script.run_silent session task.script with
      | Error msg -> Error msg
      | Ok session -> Ok (table_of_relation (Session.materialized session)))

(* one client: replay every task over the socket, collect each [rows]
   response *)
let client_replay ~path ~client tasks =
  let c = Net.Client.connect ~path in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  (match Net.Client.call_exn c (Protocol.Hello client) with
  | Protocol.Welcome _ -> ()
  | r ->
      failwith
        (Printf.sprintf "%s: hello answered %s" client
           (Protocol.encode_response r)));
  let results =
    List.map
      (fun (task : Sheet_tpch.Tpch_tasks.t) ->
        (match Net.Client.call_exn c (Protocol.Open task.base) with
        | Protocol.Opened _ -> ()
        | r ->
            failwith
              (Printf.sprintf "%s task %d: open answered %s" client task.id
                 (Protocol.encode_response r)));
        List.iter
          (fun line ->
            match Net.Client.call_exn c (Protocol.Line line) with
            | Protocol.Applied _ -> ()
            | r ->
                failwith
                  (Printf.sprintf "%s task %d: %S answered %s" client
                     task.id line
                     (Protocol.encode_response r)))
          (Sheet_study.Sheetmusiq_model.script_lines task);
        match Net.Client.call_exn c Protocol.Rows with
        | Protocol.Table { columns; rows; _ } ->
            (task.id, { t_columns = columns; t_rows = rows })
        | r ->
            failwith
              (Printf.sprintf "%s task %d: rows answered %s" client task.id
                 (Protocol.encode_response r)))
      tasks
  in
  (match Net.Client.call_exn c Protocol.Quit with
  | Protocol.Bye -> ()
  | r ->
      failwith
        (Printf.sprintf "%s: quit answered %s" client
           (Protocol.encode_response r)));
  results

let () =
  Obs.set_sink Obs.Memory;
  Obs.Flightrec.set_capacity 1_000_000;
  let tasks = Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions in
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  (* ground truth first, then a clean telemetry slate so the labeled
     accounting below sees only server-side work *)
  let expected =
    List.map (fun t -> (t, direct_replay catalog t)) tasks
  in
  List.iter
    (fun ((task : Sheet_tpch.Tpch_tasks.t), r) ->
      match r with
      | Error msg ->
          check (Printf.sprintf "task %2d direct replay" task.id) false msg
      | Ok _ -> ())
    expected;
  Obs.clear_events ();
  Obs.Metrics.reset ();
  Obs.Histogram.reset ();
  Obs.Flightrec.clear ();
  Materialize.reset_cache ();
  with_config ~domains:4 @@ fun () ->
  let server =
    Server.create
      (Server.config ~max_sessions:(n_clients * 2)
         (Sheet_sql.Catalog.find catalog))
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sheetserve-gate-%d.sock" (Unix.getpid ()))
  in
  let listener = Net.listen server ~path in
  let results = Array.make n_clients [] in
  let errors = Array.make n_clients None in
  let threads =
    List.init n_clients (fun i ->
        Thread.create
          (fun () ->
            try
              results.(i) <-
                client_replay ~path
                  ~client:(Printf.sprintf "u%d" i)
                  tasks
            with e -> errors.(i) <- Some (Printexc.to_string e))
          ())
  in
  List.iter Thread.join threads;
  Net.shutdown listener;
  Array.iteri
    (fun i err ->
      match err with
      | Some msg -> check (Printf.sprintf "client u%d" i) false msg
      | None -> ())
    errors;
  (* row parity: every client saw exactly the single-threaded result *)
  let expected_tbl = Hashtbl.create 16 in
  List.iter
    (fun ((task : Sheet_tpch.Tpch_tasks.t), r) ->
      match r with
      | Ok t -> Hashtbl.replace expected_tbl task.id t
      | Error _ -> ())
    expected;
  Array.iteri
    (fun i per_task ->
      List.iter
        (fun (task_id, (got : table)) ->
          match Hashtbl.find_opt expected_tbl task_id with
          | None -> ()
          | Some want ->
              let label =
                Printf.sprintf "client u%d task %2d" i task_id
              in
              check (label ^ " columns") (got.t_columns = want.t_columns)
                "schema over the wire differs from direct replay";
              check (label ^ " rows") (got.t_rows = want.t_rows)
                (Printf.sprintf
                   "served %d row(s) differ from direct replay's %d"
                   (List.length got.t_rows)
                   (List.length want.t_rows)))
        per_task)
    results;
  (* balanced spans despite 8 handler threads: open/finish stayed
     single-writer under the engine lock *)
  check "spans" (Obs.open_spans () = 0)
    (Printf.sprintf "%d unclosed span(s)" (Obs.open_spans ()));
  check "nesting" (Obs.nesting_ok ()) "span closed out of order";
  (* flight recorder never dropped an event *)
  check "flightrec drops"
    (Obs.Flightrec.dropped () = 0)
    (Printf.sprintf "%d event(s) dropped" (Obs.Flightrec.dropped ()));
  (* per-session labeled accounting: identical per client, summing to
     the unlabeled total *)
  let labeled_count i =
    Obs.Histogram.count
      (Obs.Histogram.histogram_labeled Obs.h_engine_apply
         (Obs.Labels.v [ ("session", Printf.sprintf "u%d" i) ]))
  in
  let counts = List.init n_clients labeled_count in
  let total_ops = Obs.Metrics.value_of Obs.k_engine_ops in
  check "labeled sum"
    (List.fold_left ( + ) 0 counts = total_ops)
    (Printf.sprintf "session series sum to %d, %s = %d"
       (List.fold_left ( + ) 0 counts)
       Obs.k_engine_ops total_ops);
  check "labeled balance"
    (match counts with
    | [] -> false
    | c0 :: rest -> c0 > 0 && List.for_all (fun c -> c = c0) rest)
    (Printf.sprintf "per-session sample counts diverge: [%s]"
       (String.concat "; " (List.map string_of_int counts)));
  (* shared semantic cache stayed exact under concurrent sessions *)
  let v = Obs.Metrics.value_of in
  let cs = Materialize.cache_stats () in
  check "cache accounting"
    (cs.Materialize.requests
     = cs.Materialize.hits + cs.Materialize.subsumed_hits
       + cs.Materialize.misses
    && cs.Materialize.requests = v Obs.k_cache_requests
    && v Obs.k_cache_requests
       = v Obs.k_cache_hits + v Obs.k_cache_hits_subsumed
         + v Obs.k_cache_misses)
    (Printf.sprintf "requests %d, hits %d, subsumed %d, misses %d"
       cs.Materialize.requests cs.Materialize.hits
       cs.Materialize.subsumed_hits cs.Materialize.misses);
  (* every session said quit *)
  check "sessions drained"
    (Server.session_count server = 0)
    (Printf.sprintf "%d session(s) still live" (Server.session_count server));
  (match Server.stats server with
  | Protocol.Stats { busy_rejections; _ } ->
      check "no busy" (busy_rejections = 0)
        (Printf.sprintf "%d busy rejection(s)" busy_rejections)
  | _ -> check "stats" false "stats response malformed");
  if !failures > 0 then begin
    Printf.eprintf "serve gate: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf
      "serve gate: %d client(s) x %d task(s) served over %s with row \
       parity, balanced spans, zero flightrec drops, exact per-session \
       accounting\n"
      n_clients (List.length tasks) path
