(* Sheetserve load driver: replay hundreds of concurrent simulated
   study users against a live server and prove the result is the same
   as if each had the machine to themselves.

   Each simulated user is one [Study.Sheetmusiq_model.op_stream] —
   the task's direct-manipulation script with that subject's
   deterministic mistake/undo/retry detours — sent line by line over
   a Unix socket. All sessions share the process's semantic
   materialization cache. After the concurrent phase, every session
   is replayed serially in its own uid arena (after
   [reset_uid_arena] + [Materialize.reset_cache]) and the driver
   asserts the concurrent result is bit-identical: same rows, same
   order, same final uid.

   Reports sessions/sec, op-latency percentiles and cache hit ratios;
   [--json BENCH_sheetmusiq.json] merges them under the regression-
   guarded [serve/] prefix (tools/bench_diff.ml).

     dune exec tools/serve_load.exe -- --sessions 200 *)

module Obs = Sheet_obs.Obs
module J = Sheet_obs.Obs_json
open Sheet_core
open Sheet_serve

type user_result = {
  u_arena : int;
  u_uid : int;
  u_columns : (string * Sheet_rel.Value.vtype) list;
  u_rows : Sheet_rel.Value.t list list;
  u_ops : int;
  u_wall_ns : int;
}

let ns_of_s s = int_of_float (s *. 1e9)

let percentile arr phi =
  let len = Array.length arr in
  if len = 0 then 0
  else begin
    let rank = int_of_float (ceil (phi *. float_of_int len)) in
    arr.(max 0 (min (len - 1) (rank - 1)))
  end

let rec retry_connect ~path attempts =
  match Net.Client.connect ~path with
  | c -> c
  | exception Unix.Unix_error _ when attempts > 0 ->
      Thread.delay 0.01;
      retry_connect ~path (attempts - 1)

(* busy is the admission controller talking, not an error: back off
   and resend *)
let rec call_admitted c req =
  match Net.Client.call_exn c req with
  | Protocol.Refused { busy = true; _ } ->
      Thread.delay 0.005;
      call_admitted c req
  | resp -> resp

let fail fmt = Printf.ksprintf failwith fmt

let run_user ~path ~think ~client (task : Sheet_tpch.Tpch_tasks.t) steps
    latencies =
  let started = Unix.gettimeofday () in
  let c = retry_connect ~path 500 in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  let arena =
    match call_admitted c (Protocol.Hello client) with
    | Protocol.Welcome { arena; _ } -> arena
    | r -> fail "%s: hello answered %s" client (Protocol.encode_response r)
  in
  (match call_admitted c (Protocol.Open task.Sheet_tpch.Tpch_tasks.base) with
  | Protocol.Opened _ -> ()
  | r -> fail "%s: open answered %s" client (Protocol.encode_response r));
  let ops = ref 0 in
  List.iter
    (fun (step : Sheet_study.Sheetmusiq_model.step) ->
      if think > 0. then Thread.delay (step.think_s *. think);
      let t0 = Unix.gettimeofday () in
      (match call_admitted c (Protocol.Line step.line) with
      | Protocol.Applied _ -> ()
      | r ->
          fail "%s: %S answered %s" client step.line
            (Protocol.encode_response r));
      latencies := ns_of_s (Unix.gettimeofday () -. t0) :: !latencies;
      incr ops)
    steps;
  let uid, columns, rows =
    match call_admitted c Protocol.Rows with
    | Protocol.Table { uid; columns; rows } -> (uid, columns, rows)
    | r -> fail "%s: rows answered %s" client (Protocol.encode_response r)
  in
  (match call_admitted c Protocol.Quit with
  | Protocol.Bye -> ()
  | r -> fail "%s: quit answered %s" client (Protocol.encode_response r));
  {
    u_arena = arena;
    u_uid = uid;
    u_columns = columns;
    u_rows = rows;
    u_ops = !ops;
    u_wall_ns = ns_of_s (Unix.gettimeofday () -. started);
  }

(* the serial ground truth: same arena, cold cache, same stream *)
let serial_replay catalog (task : Sheet_tpch.Tpch_tasks.t) steps arena =
  Spreadsheet.reset_uid_arena arena;
  Spreadsheet.in_uid_arena arena @@ fun () ->
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> Error ("no base relation " ^ task.base)
  | Some base ->
      let session = ref (Session.create ~name:task.base base) in
      let err = ref None in
      List.iter
        (fun (step : Sheet_study.Sheetmusiq_model.step) ->
          if !err = None then
            match Script.run_line !session step.line with
            | Ok o -> session := o.Script.session
            | Error msg -> err := Some (step.line ^ ": " ^ msg))
        steps;
      (match !err with
      | Some msg -> Error msg
      | None ->
          let rel = Session.materialized !session in
          Ok
            ( (Session.current !session).Spreadsheet.uid,
              List.map
                (fun c -> (c.Sheet_rel.Schema.name, c.Sheet_rel.Schema.ty))
                (Sheet_rel.Schema.columns (Sheet_rel.Relation.schema rel)),
              List.map Sheet_rel.Row.to_list (Sheet_rel.Relation.rows rel) ))

(* ---- BENCH_sheetmusiq.json merge (schema sheetmusiq-bench/v2) ---- *)

let bench_entry ~ns ~p50 ~p90 ~p99 ~mx ~samples extra =
  J.Obj
    (("ns_per_run", J.Float ns)
    :: ("p50_ns", J.Int p50)
    :: ("p90_ns", J.Int p90)
    :: ("p99_ns", J.Int p99)
    :: ("max_ns", J.Int mx)
    :: ("samples", J.Int samples)
    :: extra)

let merge_bench ~path entries =
  let base =
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> (
        match J.parse contents with
        | Ok j -> j
        | Error msg -> failwith (path ^ ": " ^ msg))
    | exception Sys_error _ ->
        J.Obj
          [
            ("schema", J.String "sheetmusiq-bench/v2");
            ("unit", J.String "ns/run");
            ("results", J.Obj []);
          ]
  in
  let updated =
    match base with
    | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) ->
               if k <> "results" then (k, v)
               else
                 match v with
                 | J.Obj results ->
                     let kept =
                       List.filter
                         (fun (name, _) -> not (List.mem_assoc name entries))
                         results
                     in
                     (k, J.Obj (kept @ entries))
                 | other -> (k, other))
             fields)
    | _ -> failwith (path ^ ": not a benchmark baseline object")
  in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (J.to_string ~pretty:true updated);
      output_char oc '\n')

let () =
  let sessions = ref 200 in
  let sf = ref 0.001 in
  let seed = ref 2115 in
  let rate = ref 0 in
  let think = ref 0. in
  let json = ref "" in
  Arg.parse
    [
      ("--sessions", Arg.Set_int sessions, "N concurrent sessions (200)");
      ("--sf", Arg.Set_float sf, "F TPC-H scale factor (0.001)");
      ("--seed", Arg.Set_int seed, "N stream seed (2115)");
      ( "--rate",
        Arg.Set_int rate,
        "N per-session ops/s cap (0 = unlimited)" );
      ( "--think",
        Arg.Set_float think,
        "F think-time scale, 0 = replay at full speed" );
      ( "--json",
        Arg.Set_string json,
        "PATH merge serve/* entries into this benchmark baseline" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve_load [--sessions N] [--think F] [--json BENCH_sheetmusiq.json]";
  let n = !sessions in
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = !sf; seed = 42 })
  in
  let tasks =
    Array.of_list
      (Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions)
  in
  let user_task i = tasks.(i mod Array.length tasks) in
  let user_steps i =
    Sheet_study.Sheetmusiq_model.op_stream ~seed:!seed ~subject:(i + 1)
      (user_task i)
  in
  Materialize.reset_cache ();
  let server =
    Server.create
      (Server.config ~max_sessions:n ~max_ops_per_s:!rate
         (Sheet_sql.Catalog.find catalog))
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sheetserve-load-%d.sock" (Unix.getpid ()))
  in
  let listener = Net.listen server ~path in
  let results : user_result option array = Array.make n None in
  let errors = Array.make n None in
  let latencies = ref [] in
  let lat_mutex = Mutex.create () in
  let wall0 = Unix.gettimeofday () in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let local = ref [] in
            (try
               results.(i) <-
                 Some
                   (run_user ~path ~think:!think
                      ~client:(Printf.sprintf "u%d" i)
                      (user_task i) (user_steps i) local)
             with e -> errors.(i) <- Some (Printexc.to_string e));
            Mutex.lock lat_mutex;
            latencies := List.rev_append !local !latencies;
            Mutex.unlock lat_mutex)
          ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. wall0 in
  Net.shutdown listener;
  let failures = ref 0 in
  Array.iteri
    (fun i err ->
      match err with
      | Some msg ->
          incr failures;
          Printf.printf "FAIL u%d: %s\n" i msg
      | None -> ())
    errors;
  let cs = Materialize.cache_stats () in
  (* serial ground truth: cold cache, every session replayed alone in
     its own arena — rows, order and uids must be bit-identical *)
  Materialize.reset_cache ();
  Array.iteri
    (fun i r ->
      match r with
      | None -> ()
      | Some r -> (
          match serial_replay catalog (user_task i) (user_steps i) r.u_arena with
          | Error msg ->
              incr failures;
              Printf.printf "FAIL u%d serial replay: %s\n" i msg
          | Ok (uid, columns, rows) ->
              if r.u_uid <> uid then begin
                incr failures;
                Printf.printf
                  "FAIL u%d: concurrent final uid %d, serial %d\n" i
                  r.u_uid uid
              end;
              if r.u_columns <> columns then begin
                incr failures;
                Printf.printf "FAIL u%d: schema diverges from serial replay\n"
                  i
              end;
              if r.u_rows <> rows then begin
                incr failures;
                Printf.printf
                  "FAIL u%d: %d concurrent row(s) diverge from %d serial\n"
                  i
                  (List.length r.u_rows)
                  (List.length rows)
              end))
    results;
  let lats = Array.of_list !latencies in
  Array.sort compare lats;
  let total_ops = Array.length lats in
  let session_walls =
    Array.to_list results
    |> List.filter_map (Option.map (fun r -> r.u_wall_ns))
    |> Array.of_list
  in
  Array.sort compare session_walls;
  let sessions_per_s = float_of_int n /. wall_s in
  let p50 = percentile lats 0.5
  and p90 = percentile lats 0.9
  and p99 = percentile lats 0.99 in
  let mx = if total_ops = 0 then 0 else lats.(total_ops - 1) in
  let hit_ratio =
    if cs.Materialize.requests = 0 then 0.
    else
      float_of_int (cs.Materialize.hits + cs.Materialize.subsumed_hits)
      /. float_of_int cs.Materialize.requests
  in
  Printf.printf
    "serve load: %d session(s) in %.2fs = %.1f sessions/s; %d op(s), p50 \
     %.2fms p90 %.2fms p99 %.2fms; cache requests %d = exact %d + \
     subsumed %d + miss %d (hit ratio %.2f)\n"
    n wall_s sessions_per_s total_ops
    (float_of_int p50 /. 1e6)
    (float_of_int p90 /. 1e6)
    (float_of_int p99 /. 1e6)
    cs.Materialize.requests cs.Materialize.hits cs.Materialize.subsumed_hits
    cs.Materialize.misses hit_ratio;
  if !failures > 0 then begin
    Printf.eprintf "serve load: %d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf
    "serve load: all %d concurrent session(s) bit-identical to serial \
     replay (rows, order, final uids)\n"
    n;
  if !json <> "" then begin
    let mean_session_ns =
      if n = 0 then 0. else wall_s *. 1e9 /. float_of_int n
    in
    let misses_per_1k =
      if cs.Materialize.requests = 0 then 0.
      else
        1000.
        *. float_of_int cs.Materialize.misses
        /. float_of_int cs.Materialize.requests
    in
    merge_bench ~path:!json
      [
        ( "serve/sessions-per-sec",
          bench_entry ~ns:mean_session_ns
            ~p50:(percentile session_walls 0.5)
            ~p90:(percentile session_walls 0.9)
            ~p99:(percentile session_walls 0.99)
            ~mx:
              (if Array.length session_walls = 0 then 0
               else session_walls.(Array.length session_walls - 1))
            ~samples:n
            [ ("sessions_per_s", J.Float sessions_per_s) ] );
        ( "serve/p99",
          bench_entry
            ~ns:(float_of_int p99)
            ~p50 ~p90 ~p99 ~mx ~samples:total_ops [] );
        ( "serve/cache-misses-per-1k",
          bench_entry ~ns:misses_per_1k ~p50:0 ~p90:0 ~p99:0 ~mx:0
            ~samples:cs.Materialize.requests
            [ ("hit_ratio", J.Float hit_ratio) ] );
      ];
    Printf.printf "serve load: merged serve/* entries into %s\n" !json
  end
