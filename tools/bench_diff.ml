(* bench_diff — the consumer of BENCH_sheetmusiq.json (ISSUE 4).

   Usage:
     dune exec tools/bench_diff.exe -- <baseline.json> <candidate.json>

   Reads two bench baselines (schema sheetmusiq-bench/v1 or /v2 —
   v1 has only ns_per_run means, v2 adds exact sample percentiles),
   prints a per-benchmark delta table, and exits non-zero when any
   guarded entry — a name starting with "op/", "table" (the paper's
   operator-scaling and table-regeneration workloads, including the
   1M-row "table/*-1m" scans), "cache/" (the semantic-cache win) or
   "col/" (the Sheetcol columnar substrate) — regressed by more than
   25 % on ns_per_run. This is the required check for every
   perf-claiming PR: regenerate a fresh baseline, diff against the
   committed one, and only commit the new file if the gate is green.

   Exit codes: 0 ok, 1 regression, 2 usage / unreadable input. *)

module J = Sheet_obs.Obs_json

let threshold_pct = 25.

let guarded name =
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  starts_with "op/" name || starts_with "table" name
  || starts_with "cache/" name || starts_with "col/" name

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 2) fmt

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg -> die "bench_diff: %s" msg

type entry = { ns : float; p50 : float option; p99 : float option }

let number = function
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

(* Both schema versions land in the same shape; v1 entries simply have
   no percentile fields. *)
let load path =
  let json =
    match J.parse (read_file path) with
    | Ok j -> j
    | Error msg -> die "bench_diff: %s: %s" path msg
  in
  (match J.member "schema" json with
  | Some (J.String ("sheetmusiq-bench/v1" | "sheetmusiq-bench/v2")) -> ()
  | Some (J.String other) ->
      die "bench_diff: %s: unsupported schema %S" path other
  | _ -> die "bench_diff: %s: missing \"schema\" field" path);
  match J.member "results" json with
  | Some (J.Obj entries) ->
      List.filter_map
        (fun (name, v) ->
          match number (J.member "ns_per_run" v) with
          | Some ns ->
              Some
                ( name,
                  { ns;
                    p50 = number (J.member "p50_ns" v);
                    p99 = number (J.member "p99_ns" v) } )
          | None -> None)
        entries
  | _ -> die "bench_diff: %s: missing \"results\" object" path

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let pct_delta ~old ~new_ =
  if old <= 0. then 0. else (new_ -. old) /. old *. 100.

let () =
  let baseline_path, candidate_path =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> die "usage: bench_diff <baseline.json> <candidate.json>"
  in
  let baseline = load baseline_path in
  let candidate = load candidate_path in
  let names =
    List.sort_uniq compare
      (List.map fst baseline @ List.map fst candidate)
  in
  Printf.printf "%-40s %12s %12s %9s %8s  %s\n" "benchmark" "baseline"
    "candidate" "delta" "p99" "";
  let regressions = ref [] in
  List.iter
    (fun name ->
      match (List.assoc_opt name baseline, List.assoc_opt name candidate) with
      | Some b, Some c ->
          let delta = pct_delta ~old:b.ns ~new_:c.ns in
          let p99_delta =
            match (b.p99, c.p99) with
            | Some bp, Some cp -> Printf.sprintf "%+7.1f%%" (pct_delta ~old:bp ~new_:cp)
            | _ -> "-"
          in
          let flag =
            if guarded name && delta > threshold_pct then begin
              regressions := name :: !regressions;
              "REGRESSION"
            end
            else if delta > threshold_pct then "slower (unguarded)"
            else if delta < -.threshold_pct then "faster"
            else ""
          in
          Printf.printf "%-40s %12s %12s %+8.1f%% %8s  %s\n" name
            (pretty_ns b.ns) (pretty_ns c.ns) delta p99_delta flag
      | Some b, None ->
          Printf.printf "%-40s %12s %12s %9s %8s  removed\n" name
            (pretty_ns b.ns) "-" "-" "-"
      | None, Some c ->
          Printf.printf "%-40s %12s %12s %9s %8s  added\n" name "-"
            (pretty_ns c.ns) "-" "-"
      | None, None -> ())
    names;
  match List.rev !regressions with
  | [] ->
      Printf.printf "\nok: no guarded benchmark regressed by more than %.0f%%\n"
        threshold_pct;
      exit 0
  | offenders ->
      Printf.printf "\nFAIL: %d benchmark(s) regressed by more than %.0f%%:\n"
        (List.length offenders) threshold_pct;
      List.iter (fun n -> Printf.printf "  - %s\n" n) offenders;
      exit 1
