(* bench_diff — the consumer of BENCH_sheetmusiq.json (ISSUE 4).

   Usage:
     dune exec tools/bench_diff.exe -- [--json] <baseline.json> <candidate.json>

   Reads two bench baselines (schema sheetmusiq-bench/v1 or /v2 —
   v1 has only ns_per_run means, v2 adds exact sample percentiles),
   prints a per-benchmark delta table, and exits non-zero when any
   guarded entry — a name starting with "op/", "table" (the paper's
   operator-scaling and table-regeneration workloads, including the
   1M-row "table/*-1m" scans), "cache/" (the semantic-cache win),
   "col/" (the Sheetcol columnar substrate) or "obs/" (the sharded
   Sheetscope record path) — regressed by more than 25 % on
   ns_per_run. This is the required check for every perf-claiming PR:
   regenerate a fresh baseline, diff against the committed one, and
   only commit the new file if the gate is green.

   With [--json] the same delta table is emitted machine-readably
   (schema "sheetmusiq-bench-diff/v1"): one entry per benchmark with
   its status — ok / regression / faster / slower-unguarded / added /
   removed — plus explicit regression/added/removed name lists, so CI
   and future PRs consume the verdict without scraping text. Exit
   codes are identical in both modes.

   Exit codes: 0 ok, 1 regression, 2 usage / unreadable input. *)

module J = Sheet_obs.Obs_json

let threshold_pct = 25.

(* the regression-guarded benchmark families; also emitted in the
   --json report so consumers know what the gate covered *)
let guarded_prefixes = [ "op/"; "table"; "cache/"; "col/"; "obs/"; "serve/" ]

let guarded name =
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  List.exists (fun prefix -> starts_with prefix name) guarded_prefixes

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 2) fmt

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> contents
  | exception Sys_error msg -> die "bench_diff: %s" msg

type entry = { ns : float; p50 : float option; p99 : float option }

let number = function
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

(* Both schema versions land in the same shape; v1 entries simply have
   no percentile fields. *)
let load path =
  let json =
    match J.parse (read_file path) with
    | Ok j -> j
    | Error msg -> die "bench_diff: %s: %s" path msg
  in
  (match J.member "schema" json with
  | Some (J.String ("sheetmusiq-bench/v1" | "sheetmusiq-bench/v2")) -> ()
  | Some (J.String other) ->
      die "bench_diff: %s: unsupported schema %S" path other
  | _ -> die "bench_diff: %s: missing \"schema\" field" path);
  match J.member "results" json with
  | Some (J.Obj entries) ->
      List.filter_map
        (fun (name, v) ->
          match number (J.member "ns_per_run" v) with
          | Some ns ->
              Some
                ( name,
                  { ns;
                    p50 = number (J.member "p50_ns" v);
                    p99 = number (J.member "p99_ns" v) } )
          | None -> None)
        entries
  | _ -> die "bench_diff: %s: missing \"results\" object" path

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let pct_delta ~old ~new_ =
  if old <= 0. then 0. else (new_ -. old) /. old *. 100.

(* the per-benchmark verdict, shared by the text and JSON renderers *)
type row = {
  r_name : string;
  r_baseline : entry option;
  r_candidate : entry option;
  r_status : string;  (* ok | regression | faster | slower-unguarded
                         | added | removed *)
  r_delta_pct : float option;
  r_p99_delta_pct : float option;
}

let classify name baseline candidate =
  match (baseline, candidate) with
  | Some b, Some c ->
      let delta = pct_delta ~old:b.ns ~new_:c.ns in
      let status =
        if guarded name && delta > threshold_pct then "regression"
        else if delta > threshold_pct then "slower-unguarded"
        else if delta < -.threshold_pct then "faster"
        else "ok"
      in
      { r_name = name;
        r_baseline = baseline;
        r_candidate = candidate;
        r_status = status;
        r_delta_pct = Some delta;
        r_p99_delta_pct =
          (match (b.p99, c.p99) with
          | Some bp, Some cp -> Some (pct_delta ~old:bp ~new_:cp)
          | _ -> None) }
  | Some _, None ->
      { r_name = name;
        r_baseline = baseline;
        r_candidate = None;
        r_status = "removed";
        r_delta_pct = None;
        r_p99_delta_pct = None }
  | None, Some _ ->
      { r_name = name;
        r_baseline = None;
        r_candidate = candidate;
        r_status = "added";
        r_delta_pct = None;
        r_p99_delta_pct = None }
  | None, None ->
      { r_name = name;
        r_baseline = None;
        r_candidate = None;
        r_status = "ok";
        r_delta_pct = None;
        r_p99_delta_pct = None }

let names_with status rows =
  List.filter_map
    (fun r -> if r.r_status = status then Some r.r_name else None)
    rows

let print_text rows =
  Printf.printf "%-40s %12s %12s %9s %8s  %s\n" "benchmark" "baseline"
    "candidate" "delta" "p99" "";
  List.iter
    (fun r ->
      let ns = function
        | Some e -> pretty_ns e.ns
        | None -> "-"
      in
      match r.r_delta_pct with
      | Some delta ->
          let p99 =
            match r.r_p99_delta_pct with
            | Some d -> Printf.sprintf "%+7.1f%%" d
            | None -> "-"
          in
          let flag =
            match r.r_status with
            | "regression" -> "REGRESSION"
            | "slower-unguarded" -> "slower (unguarded)"
            | "faster" -> "faster"
            | _ -> ""
          in
          Printf.printf "%-40s %12s %12s %+8.1f%% %8s  %s\n" r.r_name
            (ns r.r_baseline) (ns r.r_candidate) delta p99 flag
      | None ->
          Printf.printf "%-40s %12s %12s %9s %8s  %s\n" r.r_name
            (ns r.r_baseline) (ns r.r_candidate) "-" "-" r.r_status)
    rows;
  match names_with "regression" rows with
  | [] ->
      Printf.printf "\nok: no guarded benchmark regressed by more than %.0f%%\n"
        threshold_pct
  | offenders ->
      Printf.printf "\nFAIL: %d benchmark(s) regressed by more than %.0f%%:\n"
        (List.length offenders) threshold_pct;
      List.iter (fun n -> Printf.printf "  - %s\n" n) offenders

let print_json ~baseline_path ~candidate_path rows =
  let opt_float = function
    | Some f -> J.Float f
    | None -> J.Null
  in
  let json =
    J.Obj
      [ ("schema", J.String "sheetmusiq-bench-diff/v1");
        ("baseline", J.String baseline_path);
        ("candidate", J.String candidate_path);
        ("threshold_pct", J.Float threshold_pct);
        ("guarded_prefixes",
         J.List (List.map (fun p -> J.String p) guarded_prefixes));
        ("ok", J.Bool (names_with "regression" rows = []));
        ("entries",
         J.List
           (List.map
              (fun r ->
                J.Obj
                  (List.concat
                     [ [ ("name", J.String r.r_name);
                         ("status", J.String r.r_status);
                         ("guarded", J.Bool (guarded r.r_name)) ];
                       (match r.r_baseline with
                       | Some e ->
                           [ ("baseline_ns", J.Float e.ns);
                             ("baseline_p99_ns", opt_float e.p99) ]
                       | None -> []);
                       (match r.r_candidate with
                       | Some e ->
                           [ ("candidate_ns", J.Float e.ns);
                             ("candidate_p99_ns", opt_float e.p99) ]
                       | None -> []);
                       [ ("delta_pct", opt_float r.r_delta_pct);
                         ("p99_delta_pct", opt_float r.r_p99_delta_pct) ] ]))
              rows));
        ("regressions",
         J.List (List.map (fun n -> J.String n) (names_with "regression" rows)));
        ("added", J.List (List.map (fun n -> J.String n) (names_with "added" rows)));
        ("removed",
         J.List (List.map (fun n -> J.String n) (names_with "removed" rows))) ]
  in
  print_endline (J.to_string ~pretty:true json)

let () =
  let json_mode, baseline_path, candidate_path =
    match Sys.argv with
    | [| _; a; b |] -> (false, a, b)
    | [| _; "--json"; a; b |] -> (true, a, b)
    | _ -> die "usage: bench_diff [--json] <baseline.json> <candidate.json>"
  in
  let baseline = load baseline_path in
  let candidate = load candidate_path in
  let names =
    List.sort_uniq compare
      (List.map fst baseline @ List.map fst candidate)
  in
  let rows =
    List.map
      (fun name ->
        classify name (List.assoc_opt name baseline)
          (List.assoc_opt name candidate))
      names
  in
  if json_mode then print_json ~baseline_path ~candidate_path rows
  else print_text rows;
  if names_with "regression" rows = [] then exit 0 else exit 1
