(* Parallel-determinism gate: replay every bundled TPC-H task script
   once on a single domain and once morsel-parallel on four, with the
   cutover threshold and morsel size forced low enough that the
   sf-0.001 relations genuinely split. Fail the build when any task's
   rows diverge — in content *or order* — between the two runs, on
   either execution path (Materialize.full and Plan.execute), when the
   parallel run left spans unbalanced, or when it never actually
   scheduled a morsel. Run via [dune build @par], part of [@gates]. *)

open Sheet_core
module Obs = Sheet_obs.Obs
module Relation = Sheet_rel.Relation
module Row = Sheet_rel.Row
module Par = Sheet_rel.Par

let failures = ref 0

let check label ok detail =
  if not ok then begin
    Printf.printf "FAIL %s: %s\n" label detail;
    incr failures
  end

let with_config ~domains f =
  Par.set_domain_count domains;
  Par.set_parallel_threshold 64;
  Par.set_morsel_rows 128;
  Fun.protect
    ~finally:(fun () ->
      Par.set_domain_count 1;
      Par.set_parallel_threshold Par.default_parallel_threshold;
      Par.set_morsel_rows Par.default_morsel_rows)
    f

(* Materialize and plan-execute the task's final sheet; fresh caches
   so both runs replay the full pipeline. *)
let replay catalog (task : Sheet_tpch.Tpch_tasks.t) =
  Materialize.reset_cache ();
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> Error ("no base relation " ^ task.base)
  | Some base -> (
      let session = Session.create ~name:task.base base in
      match Script.run_silent session task.script with
      | Error msg -> Error msg
      | Ok session ->
          let sheet = Session.current session in
          Ok
            ( Relation.rows (Materialize.full sheet),
              Relation.rows (Plan.execute (Plan.of_sheet sheet)) ))

(* morsels/scans scheduled by the 4-domain runs only (the 1-domain
   runs also tick the counters, but always with one morsel per scan) *)
let par_morsels = ref 0
let par_scans = ref 0

let run_task catalog (task : Sheet_tpch.Tpch_tasks.t) =
  let label what = Printf.sprintf "task %2d %s" task.id what in
  let seq = with_config ~domains:1 (fun () -> replay catalog task) in
  Obs.clear_events ();
  let m0 = Obs.Metrics.value_of Obs.k_par_morsels in
  let s0 = Obs.Metrics.value_of Obs.k_par_scans in
  let par = with_config ~domains:4 (fun () -> replay catalog task) in
  par_morsels :=
    !par_morsels + (Obs.Metrics.value_of Obs.k_par_morsels - m0);
  par_scans := !par_scans + (Obs.Metrics.value_of Obs.k_par_scans - s0);
  match (seq, par) with
  | Error msg, _ | _, Error msg -> check (label "script") false msg
  | Ok (m1, p1), Ok (m4, p4) ->
      check (label "materialize")
        (List.equal Row.equal m1 m4)
        "row list diverges between 1 and 4 domains";
      check (label "plan")
        (List.equal Row.equal p1 p4)
        "plan rows diverge between 1 and 4 domains";
      check (label "spans") (Obs.open_spans () = 0)
        (Printf.sprintf "%d unclosed span(s)" (Obs.open_spans ()));
      check (label "nesting") (Obs.nesting_ok ()) "span closed out of order"

let () =
  Obs.set_sink Obs.Memory;
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  let tasks = Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions in
  List.iter (run_task catalog) tasks;
  (* the 4-domain runs must have actually split scans into morsels —
     a silently sequential "parallel" run would make the whole
     comparison vacuous *)
  check "par.morsels" (!par_morsels > 0) "no morsel was ever scheduled";
  check "par.scans"
    (!par_scans > 0)
    "no scan ever took the multi-morsel path";
  let morsels = !par_morsels in
  if !failures > 0 then begin
    Printf.eprintf "par gate: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf
      "par gate: %d task(s) bit-identical across 1 and 4 domains (%d \
       morsels)\n"
      (List.length tasks) morsels
