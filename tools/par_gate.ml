(* Parallel-determinism gate: replay every bundled TPC-H task script
   once on a single domain and once morsel-parallel on four, with the
   cutover threshold and morsel size forced low enough that the
   sf-0.001 relations genuinely split. Each config gets a FRESH
   catalog (columnar memoization would otherwise make the second run
   artificially warm) and per-task zeroed telemetry. Fail the build
   when any task diverges between the two runs:

   - rows, in content *or order*, on either execution path
     (Materialize.full and Plan.execute);
   - counter totals (Sheetscope v3 shards per domain and merges on
     read — totals must be exactly those of the single-writer run);
   - histogram sample counts (the duration-free slice; durations are
     wall time and legitimately differ);
   - the span multiset — every (name, kind, depth, rows_in, rows_out)
     recorded under the Memory sink, with workers recording morsel
     spans live. Only the ring order may differ (workers interleave);
     sorted, the two runs must be identical.

   Also fails when a parallel run left spans unbalanced or when no
   scan ever split into morsels (a silently sequential "parallel" run
   would make the comparison vacuous). Run via [dune build @par],
   part of [@gates]. *)

open Sheet_core
module Obs = Sheet_obs.Obs
module Relation = Sheet_rel.Relation
module Row = Sheet_rel.Row
module Par = Sheet_rel.Par

let failures = ref 0

let check label ok detail =
  if not ok then begin
    Printf.printf "FAIL %s: %s\n" label detail;
    incr failures
  end

let with_config ~domains f =
  Par.set_domain_count domains;
  Par.set_parallel_threshold 64;
  Par.set_morsel_rows 128;
  Fun.protect
    ~finally:(fun () ->
      Par.set_domain_count 1;
      Par.set_parallel_threshold Par.default_parallel_threshold;
      Par.set_morsel_rows Par.default_morsel_rows)
    f

(* everything a task run leaves behind, minus wall time *)
type observation = {
  o_mat : Row.t list;
  o_plan : Row.t list;
  o_counters : (string * int) list;  (* nonzero counters, sorted *)
  o_hists : (string * int) list;  (* nonzero sample counts, sorted *)
  o_spans : (string * string * int * int * int) list;
      (* (name, kind, depth, rows_in, rows_out), sorted multiset *)
}

let nonzero = List.filter (fun (_, v) -> v <> 0)

let observe catalog (task : Sheet_tpch.Tpch_tasks.t) =
  Obs.clear_events ();
  Obs.Metrics.reset ();
  Obs.Histogram.reset ();
  Materialize.reset_cache ();
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> Error ("no base relation " ^ task.base)
  | Some base -> (
      let session = Session.create ~name:task.base base in
      match Script.run_silent session task.script with
      | Error msg -> Error msg
      | Ok session ->
          let sheet = Session.current session in
          let mat = Relation.rows (Materialize.full sheet) in
          let plan = Relation.rows (Plan.execute (Plan.of_sheet sheet)) in
          check
            (Printf.sprintf "task %2d balance" task.id)
            (Obs.open_spans () = 0 && Obs.nesting_ok ())
            (Printf.sprintf "%d unclosed span(s), nesting_ok %b"
               (Obs.open_spans ()) (Obs.nesting_ok ()));
          Ok
            { o_mat = mat;
              o_plan = plan;
              o_counters = nonzero (Obs.Metrics.counters_snapshot ());
              o_hists = nonzero (Obs.Histogram.counts_snapshot ());
              o_spans =
                List.map
                  (fun (e : Obs.event) ->
                    (e.name, e.kind, e.depth, e.rows_in, e.rows_out))
                  (Obs.events ())
                |> List.sort compare })

(* one full pass over every task under a fixed domain count, against
   a fresh catalog *)
let collect ~domains tasks =
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  with_config ~domains (fun () ->
      List.map (fun task -> observe catalog task) tasks)

let pp_assoc l =
  String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l)

let diff_assoc a b =
  List.filter (fun kv -> not (List.mem kv b)) a
  @ List.filter (fun kv -> not (List.mem kv a)) b

let run_task (task : Sheet_tpch.Tpch_tasks.t) seq par =
  let label what = Printf.sprintf "task %2d %s" task.id what in
  match (seq, par) with
  | Error msg, _ | _, Error msg -> check (label "script") false msg
  | Ok s, Ok p ->
      check (label "materialize")
        (List.equal Row.equal s.o_mat p.o_mat)
        "row list diverges between 1 and 4 domains";
      check (label "plan")
        (List.equal Row.equal s.o_plan p.o_plan)
        "plan rows diverge between 1 and 4 domains";
      check (label "counters")
        (s.o_counters = p.o_counters)
        (Printf.sprintf "sharded totals diverge: %s"
           (pp_assoc (diff_assoc s.o_counters p.o_counters)));
      check (label "histograms")
        (s.o_hists = p.o_hists)
        (Printf.sprintf "sample counts diverge: %s"
           (pp_assoc (diff_assoc s.o_hists p.o_hists)));
      check (label "spans")
        (s.o_spans = p.o_spans)
        (Printf.sprintf "span multiset diverges (%d vs %d events)"
           (List.length s.o_spans) (List.length p.o_spans))

let () =
  Obs.set_sink Obs.Memory;
  let tasks = Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions in
  let seq = collect ~domains:1 tasks in
  let par = collect ~domains:4 tasks in
  List.iter2 (fun (t, s) p -> run_task t s p)
    (List.combine tasks seq) par;
  (* the runs must have actually split scans into morsels — and since
     morselization is domain-count independent, both configs report
     the same counts *)
  let total key obs =
    List.fold_left
      (fun acc -> function
        | Ok o ->
            acc
            + Option.value (List.assoc_opt key o.o_counters) ~default:0
        | Error _ -> acc)
      0 obs
  in
  let morsels = total Obs.k_par_morsels par in
  check "par.morsels" (morsels > 0) "no morsel was ever scheduled";
  check "par.scans"
    (total Obs.k_par_scans par > 0)
    "no scan ever took the multi-morsel path";
  if !failures > 0 then begin
    Printf.eprintf "par gate: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf
      "par gate: %d task(s) bit-identical across 1 and 4 domains — rows, \
       order, counters, histogram counts, span multisets (%d morsels)\n"
      (List.length tasks) morsels
