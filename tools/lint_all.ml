(* Lint gate over everything the repo bundles: each TPC-H task's
   SheetMusiq script and its SQL, through the same Sheetlint passes
   the shells expose. Any error-severity diagnostic (or a script that
   does not run) fails the build. Run via [dune build @lint]; hints
   and warnings are printed but do not fail. *)

open Sheet_core
open Sheet_analysis

let () =
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  let failures = ref 0 in
  let report what ds =
    List.iter
      (fun d -> Printf.printf "%s: %s\n" what (Diagnostic.to_string d))
      (Diagnostic.sort ds);
    if Diagnostic.has_errors ds then incr failures
  in
  let tasks = Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions in
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let label kind = Printf.sprintf "task %2d %s" task.id kind in
      (match Sheet_sql.Catalog.find catalog task.base with
      | None ->
          Printf.printf "%s: no base relation %S\n" (label "script") task.base;
          incr failures
      | Some base -> (
          let session = Session.create ~name:task.base base in
          match Sheetlint.script session task.script with
          | Error msg ->
              Printf.printf "%s: does not run: %s\n" (label "script") msg;
              incr failures
          | Ok ds -> report (label "script") ds));
      report (label "sql") (Sheetlint.sql_string catalog task.sql))
    tasks;
  (* ---------- Sheetsolve self-check ----------

     Run every task script, then try subsumption between the selection
     conjunctions of every pair of states over the same base view. A
     proven subsumption is verified against the actual materialized
     rows (every row of the subsumed state must satisfy the subsuming
     predicate — the solver must never lie on real data), every state
     must subsume itself, and across the bundle at least one
     nontrivial subsumption (between different predicates) must be
     found, or the gate fails. *)
  let open Sheet_rel in
  let sheets =
    List.filter_map
      (fun (task : Sheet_tpch.Tpch_tasks.t) ->
        match Sheet_sql.Catalog.find catalog task.base with
        | None -> None
        | Some base -> (
            match
              Script.run_silent (Session.create ~name:task.base base)
                task.script
            with
            | Error _ -> None
            | Ok session -> Some (task, Session.current session)))
      tasks
  in
  let conj sheet = State_subsume.selection_conj sheet.Spreadsheet.state in
  let type_of sheet = Schema.type_of (Spreadsheet.full_schema sheet) in
  let nontrivial = ref 0 in
  let proven = ref 0 in
  (* every row of [sheet]'s materialization must satisfy [pred]
     (checked only when the predicate's columns all exist there) *)
  let sound_on_rows what sheet pred =
    let rel = Materialize.full sheet in
    let schema = Relation.schema rel in
    if List.for_all (fun c -> Schema.type_of schema c <> None)
         (Expr.columns pred)
    then
      let index = Schema.compile_index schema in
      Array.iter
        (fun row ->
          let holds =
            match
              Expr_eval.eval_pred
                ~lookup:(fun name -> Row.get row (index name))
                pred
            with
            | b -> b
            | exception Expr_eval.Eval_error _ -> true
          in
          if not holds then begin
            Printf.printf
              "solver self-check: UNSOUND subsumption (%s): row fails %s\n"
              what (Expr.to_string pred);
            incr failures
          end)
        (Relation.to_array rel)
  in
  List.iter
    (fun ((ta : Sheet_tpch.Tpch_tasks.t), sa) ->
      (* reflexivity *)
      (match Sheetsolve.subsumes ~type_of:(type_of sa) (conj sa) (conj sa) with
      | Some _ -> ()
      | None ->
          Printf.printf
            "solver self-check: task %d does not subsume itself\n" ta.id;
          incr failures);
      List.iter
        (fun ((tb : Sheet_tpch.Tpch_tasks.t), sb) ->
          if ta.base = tb.base && not (ta.id = tb.id) then
            match
              Sheetsolve.subsumes ~type_of:(type_of sa) (conj sa) (conj sb)
            with
            | None -> ()
            | Some _ ->
                incr proven;
                if not (Expr.equal (conj sa) (conj sb)) then incr nontrivial;
                sound_on_rows
                  (Printf.sprintf "task %d => task %d" ta.id tb.id)
                  sa (conj sb))
        sheets)
    sheets;
  (* a guaranteed-nontrivial pair per base view: a two-sided numeric
     range against its upper half, checked on the view's real rows *)
  let bases = List.sort_uniq compare (List.map (fun (t, _) ->
      t.Sheet_tpch.Tpch_tasks.base) sheets)
  in
  List.iter
    (fun base_name ->
      match Sheet_sql.Catalog.find catalog base_name with
      | None -> ()
      | Some rel -> (
          let schema = Relation.schema rel in
          let numeric =
            List.find_opt
              (fun n ->
                match Schema.type_of schema n with
                | Some Value.TInt | Some Value.TFloat -> true
                | _ -> false)
              (Schema.names schema)
          in
          match numeric with
          | None -> ()
          | Some c ->
              let col = Expr.Col c in
              let p =
                Expr.And
                  ( Expr.Cmp (Expr.Ge, col, Expr.Const (Value.Int 0)),
                    Expr.Cmp (Expr.Lt, col, Expr.Const (Value.Int 10)) )
              and q = Expr.Cmp (Expr.Lt, col, Expr.Const (Value.Int 10)) in
              (match
                 Sheetsolve.subsumes ~type_of:(Schema.type_of schema) p q
               with
              | Some _ -> incr nontrivial
              | None ->
                  Printf.printf
                    "solver self-check: %s: range pair on %s not proven\n"
                    base_name c;
                  incr failures);
              sound_on_rows
                (Printf.sprintf "%s range pair" base_name)
                (Spreadsheet.of_relation ~name:base_name rel)
                (Expr.Or (Expr.Not p, q))))
    bases;
  if !nontrivial = 0 then begin
    Printf.printf "solver self-check: no nontrivial subsumption found\n";
    incr failures
  end;
  if !failures > 0 then begin
    Printf.eprintf "lint: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf
      "lint: %d task scripts and queries, no errors; solver self-check: %d \
       subsumption(s) proven, %d nontrivial, all sound\n"
      (List.length tasks) !proven !nontrivial
