(* Lint gate over everything the repo bundles: each TPC-H task's
   SheetMusiq script and its SQL, through the same Sheetlint passes
   the shells expose. Any error-severity diagnostic (or a script that
   does not run) fails the build. Run via [dune build @lint]; hints
   and warnings are printed but do not fail. *)

open Sheet_core
open Sheet_analysis

let () =
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  let failures = ref 0 in
  let report what ds =
    List.iter
      (fun d -> Printf.printf "%s: %s\n" what (Diagnostic.to_string d))
      (Diagnostic.sort ds);
    if Diagnostic.has_errors ds then incr failures
  in
  let tasks = Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions in
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let label kind = Printf.sprintf "task %2d %s" task.id kind in
      (match Sheet_sql.Catalog.find catalog task.base with
      | None ->
          Printf.printf "%s: no base relation %S\n" (label "script") task.base;
          incr failures
      | Some base -> (
          let session = Session.create ~name:task.base base in
          match Sheetlint.script session task.script with
          | Error msg ->
              Printf.printf "%s: does not run: %s\n" (label "script") msg;
              incr failures
          | Ok ds -> report (label "script") ds));
      report (label "sql") (Sheetlint.sql_string catalog task.sql))
    tasks;
  if !failures > 0 then begin
    Printf.eprintf "lint: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf "lint: %d task scripts and queries, no errors\n"
      (List.length tasks)
