(* Sheetdoctor gate: replay every bundled TPC-H task with profile
   collection on and fail the build when the profiler itself lies —
   a profile whose row counts disagree with the materializer or with
   EXPLAIN ANALYZE, path attributions inconsistent with the columnar
   selection counters, unbalanced profile regions, a profile JSON
   export that does not round-trip, or a doctor pass that raises.
   A second phase replays every task under 1 domain and under 4 and
   asserts the recorded profiles are identical once timings,
   allocation deltas and the domain gauge are masked — the profile
   counterpart of the @par determinism gate. A final micro-benchmark
   asserts that collection itself (sink off, profiles on vs off)
   costs at most 5 % of a full materialization. Run via
   [dune build @doctor], folded into [dune build @gates]. *)

open Sheet_core
module Obs = Sheet_obs.Obs
module Par = Sheet_rel.Par
module Profile = Sheet_obs.Obs.Profile

let failures = ref 0

let check label ok detail =
  if not ok then begin
    Printf.printf "FAIL %s: %s\n" label detail;
    incr failures
  end

let with_config ~domains f =
  Par.set_domain_count domains;
  Par.set_parallel_threshold 64;
  Par.set_morsel_rows 128;
  Fun.protect
    ~finally:(fun () ->
      Par.set_domain_count 1;
      Par.set_parallel_threshold Par.default_parallel_threshold;
      Par.set_morsel_rows Par.default_morsel_rows)
    f

let task_labels (task : Sheet_tpch.Tpch_tasks.t) =
  Obs.Labels.v [ ("task", string_of_int task.id) ]

let fresh_catalog () =
  Sheet_tpch.Tpch_views.install
    (Sheet_tpch.Tpch_gen.generate { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })

let reset_all task =
  Obs.clear_events ();
  Obs.Metrics.reset ();
  Obs.Histogram.reset ();
  Obs.Flightrec.clear ();
  Materialize.reset_cache ();
  Profile.clear ();
  Obs.set_ambient_labels (task_labels task)

(* the instrumented plan chain, oldest-executed first, as the
   (label, rows_out) list the profile ring must reproduce *)
let chain_of_plan_profile (p : Plan.profile) =
  let rec go acc (p : Plan.profile) =
    let acc = (p.Plan.p_label, p.Plan.p_rows_out) :: acc in
    match p.Plan.p_child with Some c -> go acc c | None -> acc
  in
  go [] p

let run_task catalog (task : Sheet_tpch.Tpch_tasks.t) =
  let label what = Printf.sprintf "task %2d %s" task.id what in
  reset_all task;
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> check (label "base") false ("no base relation " ^ task.base)
  | Some base -> (
      let session = Session.create ~name:task.base base in
      match Script.run_silent session task.script with
      | Error msg -> check (label "script") false msg
      | Ok session ->
          let sheet = Session.current session in
          let uid = sheet.Spreadsheet.uid in
          let expected = Materialize.full sheet in
          let rows = Sheet_rel.Relation.cardinality expected in
          (* the replay itself profiled: the materialize-kind record
             for the final sheet agrees with the relation it built *)
          (match Profile.find ~uid with
          | None ->
              check (label "recorded") false
                (Printf.sprintf "no profile for sheet #%d" uid)
          | Some r ->
              check (label "rows")
                (r.Profile.p_rows_out = rows)
                (Printf.sprintf "profile says %d rows, materializer %d"
                   r.Profile.p_rows_out rows);
              check (label "session label")
                (r.Profile.p_session
                = Obs.Labels.to_string (task_labels task))
                (Printf.sprintf "profile stamped %S" r.Profile.p_session));
          (* EXPLAIN ANALYZE: the plan-kind record mirrors the
             instrumented chain node for node, row for row *)
          let _rel, pprof =
            Plan.execute_instrumented ~uid (Plan.of_sheet sheet)
          in
          (match Profile.last () with
          | None -> check (label "plan recorded") false "no profile pushed"
          | Some r ->
              check (label "plan kind")
                (r.Profile.p_kind = "plan" && r.Profile.p_uid = uid)
                (Printf.sprintf "last record is %s #%d" r.Profile.p_kind
                   r.Profile.p_uid);
              check (label "plan rows")
                (r.Profile.p_rows_out = rows
                && pprof.Plan.p_rows_out = rows)
                (Printf.sprintf "profile %d, chain %d, materializer %d"
                   r.Profile.p_rows_out pprof.Plan.p_rows_out rows);
              let chain = chain_of_plan_profile pprof in
              let noted =
                List.map
                  (fun (n : Profile.node) -> (n.n_label, n.n_rows_out))
                  r.Profile.p_nodes
              in
              check (label "plan nodes") (chain = noted)
                (Printf.sprintf
                   "EXPLAIN ANALYZE chain (%d nodes) and profile nodes \
                    (%d) disagree"
                   (List.length chain) (List.length noted)));
          (* region discipline and attribution consistency over the
             whole ring *)
          check (label "regions") (Profile.open_regions () = 0)
            (Printf.sprintf "%d profile region(s) left open"
               (Profile.open_regions ()));
          List.iter
            (fun (r : Profile.t) ->
              let where = Printf.sprintf "#%d/%s" r.p_uid r.p_kind in
              check (label ("sel monotone " ^ where))
                (0 <= r.p_sel_rows_out && r.p_sel_rows_out <= r.p_sel_rows_in)
                (Printf.sprintf "sel %d -> %d" r.p_sel_rows_in
                   r.p_sel_rows_out);
              check (label ("sel attributed " ^ where))
                (r.p_sel_rows_in = 0 || r.p_compiled <> [])
                (Printf.sprintf
                   "%d rows went through selection vectors but no \
                    predicate was noted compiled"
                   r.p_sel_rows_in);
              check (label ("par " ^ where))
                (r.p_morsels >= 0 && r.p_par_scans >= 0
                && (r.p_par_scans = 0 || r.p_morsels >= r.p_par_scans))
                (Printf.sprintf "%d morsels over %d scans" r.p_morsels
                   r.p_par_scans);
              check (label ("totals " ^ where))
                (r.p_total_ns >= 0 && r.p_alloc_bytes >= 0.)
                "negative time or allocation delta")
            (Profile.records ());
          (* the global columnar counters agree in spirit: if any
             region saw selection-vector rows, the registry did too *)
          let v = Obs.Metrics.value_of in
          check (label "columnar counters")
            (List.for_all
               (fun (r : Profile.t) ->
                 r.Profile.p_sel_rows_in <= v Obs.k_col_sel_rows_in)
               (Profile.records ()))
            "a region's selection delta exceeds the global counter";
          (* JSON export round-trips exactly *)
          (match Profile.of_json (Profile.to_json ()) with
          | Error msg -> check (label "json") false msg
          | Ok parsed ->
              check (label "json") (parsed = Profile.records ())
                "profile JSON does not round-trip");
          (* the doctor reads all of it without raising *)
          (match Sheet_analysis.Doctor.run () with
          | _diags -> ignore (Sheet_analysis.Doctor.render ())
          | exception e ->
              check (label "doctor") false (Printexc.to_string e)))

(* ---- determinism: profiles identical under 1 and 4 domains once
   timings, allocations and the domain gauge are masked ---- *)

let mask_node (n : Profile.node) =
  { n with Profile.n_time_ns = 0; n_alloc_bytes = 0. }

(* Sheet uids come from a process-global counter, so the same task
   replayed twice records different absolute uids; renumber them by
   first appearance so only the shape is compared. *)
let canonical_uids records =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (r : Profile.t) ->
      let uid =
        if r.p_uid = 0 then 0
        else
          match Hashtbl.find_opt seen r.p_uid with
          | Some u -> u
          | None ->
              let u = Hashtbl.length seen + 1 in
              Hashtbl.add seen r.p_uid u;
              u
      in
      { r with Profile.p_uid = uid })
    records

let mask records =
  canonical_uids
    (List.map
       (fun (r : Profile.t) ->
         { r with
           Profile.p_total_ns = 0;
           p_alloc_bytes = 0.;
           p_domains = 0;
           p_nodes = List.map mask_node r.p_nodes })
       records)

let observe_profiles catalog (task : Sheet_tpch.Tpch_tasks.t) =
  reset_all task;
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> Error ("no base relation " ^ task.base)
  | Some base -> (
      let session = Session.create ~name:task.base base in
      match Script.run_silent session task.script with
      | Error msg -> Error msg
      | Ok session ->
          let sheet = Session.current session in
          ignore (Materialize.full sheet);
          ignore
            (Plan.execute_instrumented ~uid:sheet.Spreadsheet.uid
               (Plan.of_sheet sheet));
          Ok (mask (Profile.records ())))

let identity_pass ~domains tasks =
  let catalog = fresh_catalog () in
  with_config ~domains (fun () -> List.map (observe_profiles catalog) tasks)

let identity_check tasks =
  let seq = identity_pass ~domains:1 tasks in
  let par = identity_pass ~domains:4 tasks in
  List.iter2
    (fun ((task : Sheet_tpch.Tpch_tasks.t), s) p ->
      let label what = Printf.sprintf "identity task %2d %s" task.id what in
      match (s, p) with
      | Error msg, _ | _, Error msg -> check (label "script") false msg
      | Ok sp, Ok pp ->
          if sp <> pp && Sys.getenv_opt "DOCTOR_GATE_DEBUG" <> None then begin
            Printf.printf "task %d: %d vs %d records\n" task.id
              (List.length sp) (List.length pp);
            List.iteri
              (fun i (a, b) ->
                if a <> b then begin
                  Printf.printf "--- record %d (1 domain):\n%s\n" i
                    (Profile.render_record a);
                  Printf.printf "--- record %d (4 domains):\n%s\n" i
                    (Profile.render_record b)
                end)
              (try List.combine sp pp with Invalid_argument _ -> [])
          end;
          check (label "profiles") (sp = pp)
            "masked profiles diverge between 1 and 4 domains")
    (List.combine tasks seq) par

(* ---- overhead: collection on vs off, sink off, <= 5 % ---- *)

let overhead_check () =
  Obs.set_sink Obs.Off;
  let catalog = fresh_catalog () in
  let base = Sheet_sql.Catalog.find_exn catalog "lineitem" in
  let sheet =
    match
      Script.run_silent
        (Session.create ~name:"lineitem" base)
        (String.concat "\n"
           [ "select l_quantity > 25";
             "formula gross = l_extendedprice * (1 - l_discount)";
             "select gross > 1000";
             "order l_shipdate desc" ])
    with
    | Ok session -> Session.current session
    | Error msg -> failwith ("overhead workload: " ^ msg)
  in
  let reps = 20 in
  let batch () =
    let t0 = Obs.now_ns () in
    for _ = 1 to reps do
      ignore (Materialize.full sheet)
    done;
    Obs.now_ns () - t0
  in
  let best () =
    let m = ref max_int in
    for _ = 1 to 9 do
      let dt = batch () in
      if dt < !m then m := dt
    done;
    float_of_int !m
  in
  ignore (batch ());
  (* warm-up *)
  Profile.set_enabled false;
  let off = best () in
  Profile.set_enabled true;
  let on = best () in
  Profile.clear ();
  check "overhead"
    (on <= (off *. 1.05) +. 1e6)
    (Printf.sprintf
       "profile collection costs %.1f%% over %d materializations \
        (limit 5%%)"
       (100. *. ((on /. off) -. 1.))
       reps)

let () =
  Obs.set_sink Obs.Memory;
  let tasks = Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions in
  (* phase 1: every task profiled under live 4-domain morsel runs *)
  let catalog = fresh_catalog () in
  with_config ~domains:4 (fun () -> List.iter (run_task catalog) tasks);
  (* phase 2: masked profiles identical across domain counts *)
  identity_check tasks;
  (* phase 3: collection is cheap enough to stay always-on *)
  overhead_check ();
  Obs.set_ambient_labels Obs.Labels.empty;
  Obs.set_sink Obs.Off;
  if !failures > 0 then begin
    Printf.eprintf "doctor gate: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf
      "doctor gate: %d task(s) profiled clean under 4 domains; masked \
       profiles identical to the 1-domain replay; collection overhead \
       within 5%%\n"
      (List.length tasks)
