(* Observability gate: run every bundled TPC-H task script under full
   tracing — morsel-parallel on 4 domains with the cutover forced low,
   so the sharded v3 registry genuinely sees concurrent writers — and
   fail the build when the instrumentation itself is broken: unclosed
   or mis-nested spans, negative counters, a profiled row count that
   disagrees with the materializer, per-task labeled series that do
   not add up, or a Chrome trace export that does not parse back.
   A second phase replays every task under 1 domain and under 4
   against fresh catalogs and asserts the merged sharded totals
   (counters and histogram sample counts) are exactly equal — the
   concurrent-writer identity check. Run via [dune build @obs], next
   to [@lint]. *)

open Sheet_core
module Obs = Sheet_obs.Obs
module Par = Sheet_rel.Par

let failures = ref 0

let check label ok detail =
  if not ok then begin
    Printf.printf "FAIL %s: %s\n" label detail;
    incr failures
  end

let with_config ~domains f =
  Par.set_domain_count domains;
  Par.set_parallel_threshold 64;
  Par.set_morsel_rows 128;
  Fun.protect
    ~finally:(fun () ->
      Par.set_domain_count 1;
      Par.set_parallel_threshold Par.default_parallel_threshold;
      Par.set_morsel_rows Par.default_morsel_rows)
    f

let task_labels (task : Sheet_tpch.Tpch_tasks.t) =
  Obs.Labels.v [ ("task", string_of_int task.id) ]

let run_task catalog (task : Sheet_tpch.Tpch_tasks.t) =
  let label what = Printf.sprintf "task %2d %s" task.id what in
  (* deterministic per-task baseline: empty ring, zero metrics, cold
     materialization cache, this task's ambient label *)
  Obs.clear_events ();
  Obs.Metrics.reset ();
  Obs.Histogram.reset ();
  Obs.Flightrec.clear ();
  Materialize.reset_cache ();
  Obs.set_ambient_labels (task_labels task);
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> check (label "base") false ("no base relation " ^ task.base)
  | Some base -> (
      let session = Session.create ~name:task.base base in
      match Script.run_silent session task.script with
      | Error msg -> check (label "script") false msg
      | Ok session ->
          let sheet = Session.current session in
          (* EXPLAIN ANALYZE agrees with the materializer on every row *)
          let rel, profile = Plan.execute_instrumented (Plan.of_sheet sheet) in
          let expected = Materialize.full sheet in
          check (label "rows")
            (profile.Plan.p_rows_out
             = Sheet_rel.Relation.cardinality expected
            && Sheet_rel.Relation.cardinality rel
               = Sheet_rel.Relation.cardinality expected)
            (Printf.sprintf "profiled %d rows, materializer %d"
               profile.Plan.p_rows_out
               (Sheet_rel.Relation.cardinality expected));
          check (label "result")
            (Sheet_rel.Relation.equal_unordered_data
               (Sheet_rel.Relation.normalize rel)
               (Sheet_rel.Relation.normalize expected))
            "instrumented plan result differs from Materialize.full";
          (* spans balanced and properly nested *)
          check (label "spans") (Obs.open_spans () = 0)
            (Printf.sprintf "%d unclosed span(s)" (Obs.open_spans ()));
          check (label "nesting") (Obs.nesting_ok ())
            "span closed out of order";
          check (label "intervals")
            (Obs.events_well_formed (Obs.events ()))
            "overlapping spans do not nest";
          (* counters never go negative *)
          List.iter
            (fun (name, v) ->
              check (label ("metric " ^ name)) (v >= 0)
                (Printf.sprintf "negative value %d" v))
            (Obs.Metrics.snapshot ());
          (* the ring was never truncated mid-task — a dropped event
             means the trace silently under-reports *)
          check (label "dropped") (Obs.dropped () = 0)
            (Printf.sprintf "%d event(s) dropped from the ring"
               (Obs.dropped ()));
          (* every engine op recorded exactly one latency sample *)
          check (label "histogram")
            (Obs.Histogram.count (Obs.Histogram.histogram Obs.h_engine_apply)
            = Obs.Metrics.value_of Obs.k_engine_ops)
            (Printf.sprintf "engine.apply histogram has %d samples, %s = %d"
               (Obs.Histogram.count
                  (Obs.Histogram.histogram Obs.h_engine_apply))
               Obs.k_engine_ops
               (Obs.Metrics.value_of Obs.k_engine_ops));
          (* ... and one sample in this task's labeled series — the
             per-session accounting the SLO report reads *)
          check
            (label "labeled histogram")
            (Obs.Histogram.count
               (Obs.Histogram.histogram_labeled Obs.h_engine_apply
                  (task_labels task))
            = Obs.Metrics.value_of Obs.k_engine_ops)
            (Printf.sprintf
               "engine.apply{task=%d} has %d samples, %s = %d" task.id
               (Obs.Histogram.count
                  (Obs.Histogram.histogram_labeled Obs.h_engine_apply
                     (task_labels task)))
               Obs.k_engine_ops
               (Obs.Metrics.value_of Obs.k_engine_ops));
          (* hit-kind accounting: every materialization request is
             exactly one of exact hit, subsumed hit, or miss *)
          let v = Obs.Metrics.value_of in
          check (label "cache accounting")
            (v Obs.k_cache_requests
            = v Obs.k_cache_hits
              + v Obs.k_cache_hits_subsumed
              + v Obs.k_cache_misses)
            (Printf.sprintf "requests %d <> exact %d + subsumed %d + miss %d"
               (v Obs.k_cache_requests) (v Obs.k_cache_hits)
               (v Obs.k_cache_hits_subsumed) (v Obs.k_cache_misses));
          (* columnar selection accounting: a selection vector can
             only shrink, so survivors never exceed candidates *)
          check (label "columnar sel")
            (v Obs.k_col_sel_rows_out <= v Obs.k_col_sel_rows_in)
            (Printf.sprintf "%s = %d > %s = %d" Obs.k_col_sel_rows_out
               (v Obs.k_col_sel_rows_out) Obs.k_col_sel_rows_in
               (v Obs.k_col_sel_rows_in));
          (* and the module-local stats agree with the registry *)
          let cs = Materialize.cache_stats () in
          check (label "cache stats")
            (cs.Materialize.requests
             = cs.Materialize.hits + cs.Materialize.subsumed_hits
               + cs.Materialize.misses
            && cs.Materialize.requests = v Obs.k_cache_requests)
            (Printf.sprintf
               "cache_stats requests %d, hits %d, subsumed %d, misses %d"
               cs.Materialize.requests cs.Materialize.hits
               cs.Materialize.subsumed_hits cs.Materialize.misses);
          (* the flight recorder export round-trips through Obs_json *)
          let fr = Sheet_obs.Obs_json.to_string (Obs.Flightrec.to_json ()) in
          (match Sheet_obs.Obs_json.parse fr with
          | Error msg ->
              check (label "flightrec") false ("invalid JSON: " ^ msg)
          | Ok parsed ->
              check (label "flightrec")
                (Sheet_obs.Obs_json.equal parsed (Obs.Flightrec.to_json ()))
                "flight-recorder JSON does not round-trip");
          (* the SLO report (which now includes the labeled series)
             round-trips through the bundled JSON parser *)
          let slo = Sheet_obs.Obs_json.to_string (Obs.Slo.to_json ()) in
          (match Sheet_obs.Obs_json.parse slo with
          | Error msg -> check (label "slo") false ("invalid JSON: " ^ msg)
          | Ok parsed ->
              check (label "slo")
                (Sheet_obs.Obs_json.equal parsed (Obs.Slo.to_json ()))
                "SLO JSON does not round-trip");
          (* the Chrome trace of this task round-trips through the
             bundled JSON parser *)
          let trace = Obs.chrome_trace_string () in
          (match Sheet_obs.Obs_json.parse trace with
          | Error msg -> check (label "trace") false ("invalid JSON: " ^ msg)
          | Ok parsed ->
              check (label "trace")
                (Sheet_obs.Obs_json.equal parsed
                   (Sheet_obs.Obs_json.parse
                      (Sheet_obs.Obs_json.to_string ~pretty:true parsed)
                   |> Result.get_ok))
                "trace JSON does not round-trip"))

(* ---- concurrent-writer identity: 4-domain totals == 1-domain ---- *)

let nonzero = List.filter (fun (_, v) -> v <> 0)

let identity_observe catalog (task : Sheet_tpch.Tpch_tasks.t) =
  Obs.clear_events ();
  Obs.Metrics.reset ();
  Obs.Histogram.reset ();
  Materialize.reset_cache ();
  Obs.set_ambient_labels (task_labels task);
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> Error ("no base relation " ^ task.base)
  | Some base -> (
      let session = Session.create ~name:task.base base in
      match Script.run_silent session task.script with
      | Error msg -> Error msg
      | Ok session ->
          let sheet = Session.current session in
          ignore (Materialize.full sheet);
          ignore (Plan.execute (Plan.of_sheet sheet));
          Ok
            ( nonzero (Obs.Metrics.counters_snapshot ()),
              nonzero (Obs.Histogram.counts_snapshot ()) ))

let identity_pass ~domains tasks =
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  with_config ~domains (fun () ->
      List.map (identity_observe catalog) tasks)

let identity_check tasks =
  let seq = identity_pass ~domains:1 tasks in
  let par = identity_pass ~domains:4 tasks in
  List.iter2
    (fun ((task : Sheet_tpch.Tpch_tasks.t), s) p ->
      let label what = Printf.sprintf "identity task %2d %s" task.id what in
      match (s, p) with
      | Error msg, _ | _, Error msg -> check (label "script") false msg
      | Ok (sc, sh), Ok (pc, ph) ->
          check (label "counters") (sc = pc)
            "sharded counter totals diverge between 1 and 4 domains";
          check (label "histograms") (sh = ph)
            "histogram sample counts diverge between 1 and 4 domains")
    (List.combine tasks seq) par

let () =
  Obs.set_sink Obs.Memory;
  let tasks = Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions in
  (* phase 1: every task traced under live 4-domain morsel recording *)
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  with_config ~domains:4 (fun () -> List.iter (run_task catalog) tasks);
  (* phase 2: sharded merged totals identical across domain counts *)
  identity_check tasks;
  Obs.set_ambient_labels Obs.Labels.empty;
  if !failures > 0 then begin
    Printf.eprintf "obs gate: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf
      "obs gate: %d task(s) traced clean under 4 domains; sharded totals \
       identical to the 1-domain replay\n"
      (List.length tasks)
