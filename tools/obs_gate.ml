(* Observability gate: run every bundled TPC-H task script under full
   tracing and fail the build when the instrumentation itself is
   broken — unclosed or mis-nested spans, negative counters, a
   profiled row count that disagrees with the materializer, or a
   Chrome trace export that does not parse back. Run via
   [dune build @obs], next to [@lint]. *)

open Sheet_core
module Obs = Sheet_obs.Obs

let failures = ref 0

let check label ok detail =
  if not ok then begin
    Printf.printf "FAIL %s: %s\n" label detail;
    incr failures
  end

let run_task catalog (task : Sheet_tpch.Tpch_tasks.t) =
  let label what = Printf.sprintf "task %2d %s" task.id what in
  (* deterministic per-task baseline: empty ring, zero metrics, cold
     materialization cache *)
  Obs.clear_events ();
  Obs.Metrics.reset ();
  Obs.Histogram.reset ();
  Obs.Flightrec.clear ();
  Materialize.reset_cache ();
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> check (label "base") false ("no base relation " ^ task.base)
  | Some base -> (
      let session = Session.create ~name:task.base base in
      match Script.run_silent session task.script with
      | Error msg -> check (label "script") false msg
      | Ok session ->
          let sheet = Session.current session in
          (* EXPLAIN ANALYZE agrees with the materializer on every row *)
          let rel, profile = Plan.execute_instrumented (Plan.of_sheet sheet) in
          let expected = Materialize.full sheet in
          check (label "rows")
            (profile.Plan.p_rows_out
             = Sheet_rel.Relation.cardinality expected
            && Sheet_rel.Relation.cardinality rel
               = Sheet_rel.Relation.cardinality expected)
            (Printf.sprintf "profiled %d rows, materializer %d"
               profile.Plan.p_rows_out
               (Sheet_rel.Relation.cardinality expected));
          check (label "result")
            (Sheet_rel.Relation.equal_unordered_data
               (Sheet_rel.Relation.normalize rel)
               (Sheet_rel.Relation.normalize expected))
            "instrumented plan result differs from Materialize.full";
          (* spans balanced and properly nested *)
          check (label "spans") (Obs.open_spans () = 0)
            (Printf.sprintf "%d unclosed span(s)" (Obs.open_spans ()));
          check (label "nesting") (Obs.nesting_ok ())
            "span closed out of order";
          check (label "intervals")
            (Obs.events_well_formed (Obs.events ()))
            "overlapping spans do not nest";
          (* counters never go negative *)
          List.iter
            (fun (name, v) ->
              check (label ("metric " ^ name)) (v >= 0)
                (Printf.sprintf "negative value %d" v))
            (Obs.Metrics.snapshot ());
          (* the ring was never truncated mid-task — a dropped event
             means the trace silently under-reports *)
          check (label "dropped") (Obs.dropped () = 0)
            (Printf.sprintf "%d event(s) dropped from the ring"
               (Obs.dropped ()));
          (* every engine op recorded exactly one latency sample *)
          check (label "histogram")
            (Obs.Histogram.count (Obs.Histogram.histogram Obs.h_engine_apply)
            = Obs.Metrics.value_of Obs.k_engine_ops)
            (Printf.sprintf "engine.apply histogram has %d samples, %s = %d"
               (Obs.Histogram.count
                  (Obs.Histogram.histogram Obs.h_engine_apply))
               Obs.k_engine_ops
               (Obs.Metrics.value_of Obs.k_engine_ops));
          (* hit-kind accounting: every materialization request is
             exactly one of exact hit, subsumed hit, or miss *)
          let v = Obs.Metrics.value_of in
          check (label "cache accounting")
            (v Obs.k_cache_requests
            = v Obs.k_cache_hits
              + v Obs.k_cache_hits_subsumed
              + v Obs.k_cache_misses)
            (Printf.sprintf "requests %d <> exact %d + subsumed %d + miss %d"
               (v Obs.k_cache_requests) (v Obs.k_cache_hits)
               (v Obs.k_cache_hits_subsumed) (v Obs.k_cache_misses));
          (* columnar selection accounting: a selection vector can
             only shrink, so survivors never exceed candidates *)
          check (label "columnar sel")
            (v Obs.k_col_sel_rows_out <= v Obs.k_col_sel_rows_in)
            (Printf.sprintf "%s = %d > %s = %d" Obs.k_col_sel_rows_out
               (v Obs.k_col_sel_rows_out) Obs.k_col_sel_rows_in
               (v Obs.k_col_sel_rows_in));
          (* and the module-local stats agree with the registry *)
          let cs = Materialize.cache_stats () in
          check (label "cache stats")
            (cs.Materialize.requests
             = cs.Materialize.hits + cs.Materialize.subsumed_hits
               + cs.Materialize.misses
            && cs.Materialize.requests = v Obs.k_cache_requests)
            (Printf.sprintf
               "cache_stats requests %d, hits %d, subsumed %d, misses %d"
               cs.Materialize.requests cs.Materialize.hits
               cs.Materialize.subsumed_hits cs.Materialize.misses);
          (* the flight recorder export round-trips through Obs_json *)
          let fr = Sheet_obs.Obs_json.to_string (Obs.Flightrec.to_json ()) in
          (match Sheet_obs.Obs_json.parse fr with
          | Error msg ->
              check (label "flightrec") false ("invalid JSON: " ^ msg)
          | Ok parsed ->
              check (label "flightrec")
                (Sheet_obs.Obs_json.equal parsed (Obs.Flightrec.to_json ()))
                "flight-recorder JSON does not round-trip");
          (* the Chrome trace of this task round-trips through the
             bundled JSON parser *)
          let trace = Obs.chrome_trace_string () in
          (match Sheet_obs.Obs_json.parse trace with
          | Error msg -> check (label "trace") false ("invalid JSON: " ^ msg)
          | Ok parsed ->
              check (label "trace")
                (Sheet_obs.Obs_json.equal parsed
                   (Sheet_obs.Obs_json.parse
                      (Sheet_obs.Obs_json.to_string ~pretty:true parsed)
                   |> Result.get_ok))
                "trace JSON does not round-trip"))

let () =
  Obs.set_sink Obs.Memory;
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  let tasks = Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions in
  List.iter (run_task catalog) tasks;
  if !failures > 0 then begin
    Printf.eprintf "obs gate: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf "obs gate: %d task(s) traced clean\n" (List.length tasks)
